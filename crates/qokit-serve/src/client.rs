//! Blocking client for the serve protocol.
//!
//! [`ServeClient`] wraps one TCP connection. Control requests
//! ([`ServeClient::ping`], [`ServeClient::cache_stats`],
//! [`ServeClient::shutdown_server`]) are simple request/response pairs;
//! job submissions block until the terminal frame, invoking a progress
//! callback for every streamed [`Progress`](ServeResponse::Progress)
//! snapshot. The callback can return [`ProgressAction::Cancel`] to send
//! a `Cancel` frame on the same socket — the server honors it at the
//! job's next cancellation checkpoint.

use crate::proto::{
    decode_response, encode_request, LightConeJob, LightConeSummary, MultiStartJob,
    MultiStartSummary, ServeRequest, ServeResponse, SweepJob, SweepSummary,
};
use qokit_dist::frame::{read_frame, write_frame};
use std::net::{TcpStream, ToSocketAddrs};

/// Errors surfaced by [`ServeClient`] calls.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, or write).
    Io(std::io::Error),
    /// A frame arrived but did not decode, or its type made no sense in
    /// the current exchange.
    Protocol(String),
    /// The server answered [`ServeResponse::Error`].
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "serve client i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "serve protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// What a progress callback wants done after observing a snapshot.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ProgressAction {
    /// Keep running.
    Continue,
    /// Send a `Cancel` frame; the job ends with
    /// [`JobOutcome::Cancelled`] once the server reaches a checkpoint.
    Cancel,
}

/// A streamed partial-result snapshot (mirrors
/// [`ServeResponse::Progress`] with the wire sentinels decoded away).
#[derive(Copy, Clone, Debug)]
pub struct ProgressSnapshot {
    /// Points folded into the aggregate so far.
    pub evaluated: u64,
    /// Running energy sum.
    pub sum: f64,
    /// Best (lowest) energy so far, if any point has been seen.
    pub min_energy: Option<f64>,
    /// Flat index of the best point, if any.
    pub argmin: Option<u64>,
}

/// Terminal state of a submitted job, generic over the per-kind summary.
#[derive(Clone, Debug)]
pub enum JobOutcome<T> {
    /// The job ran to completion.
    Done(T),
    /// Admission control refused the job — the queue already held
    /// `outstanding` of `capacity` jobs. Nothing ran.
    Rejected {
        /// Outstanding jobs at submission time.
        outstanding: u64,
        /// The server's admission budget.
        capacity: u64,
    },
    /// The job was cancelled (explicit `Cancel`, deadline expiry, or a
    /// dropped sibling connection) after `evaluated` units of work.
    Cancelled {
        /// Points (sweep), restarts (multi-start), or 0 (light cone)
        /// completed before the cancellation checkpoint fired.
        evaluated: u64,
    },
}

impl<T> JobOutcome<T> {
    /// The summary if the job completed, else `None`.
    pub fn done(self) -> Option<T> {
        match self {
            JobOutcome::Done(t) => Some(t),
            _ => None,
        }
    }
}

/// One blocking connection to a qokit-serve server.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to a server (e.g. the address printed by the binary).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<ServeClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(ServeClient { stream })
    }

    fn send(&mut self, req: &ServeRequest) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &encode_request(req))?;
        Ok(())
    }

    fn recv(&mut self) -> Result<ServeResponse, ClientError> {
        let (payload, _) = read_frame(&mut self.stream)
            .map_err(|e| ClientError::Protocol(format!("reading response frame: {e}")))?;
        decode_response(&payload)
            .map_err(|e| ClientError::Protocol(format!("decoding response: {e}")))
    }

    /// Round-trips a `Ping`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send(&ServeRequest::Ping)?;
        match self.recv()? {
            ServeResponse::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Fetches the precompute-cache counters.
    pub fn cache_stats(&mut self) -> Result<crate::proto::CacheStatsView, ClientError> {
        self.send(&ServeRequest::CacheStats)?;
        match self.recv()? {
            ServeResponse::CacheStats(view) => Ok(view),
            ServeResponse::Error(m) => Err(ClientError::Server(m)),
            other => Err(unexpected("CacheStats", &other)),
        }
    }

    /// Asks the server to exit its accept loop (queued jobs still drain).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.send(&ServeRequest::Shutdown)?;
        match self.recv()? {
            ServeResponse::Ok => Ok(()),
            other => Err(unexpected("Ok", &other)),
        }
    }

    /// Submits a landscape sweep and blocks until its terminal frame,
    /// calling `on_progress` for each streamed snapshot.
    pub fn submit_sweep<F>(
        &mut self,
        job: &SweepJob,
        mut on_progress: F,
    ) -> Result<JobOutcome<SweepSummary>, ClientError>
    where
        F: FnMut(ProgressSnapshot) -> ProgressAction,
    {
        self.send(&ServeRequest::Sweep(job.clone()))?;
        self.drive(&mut on_progress, |resp| match resp {
            ServeResponse::SweepDone(summary) => Some(Ok(summary)),
            other => Some(Err(unexpected("SweepDone", &other))),
        })
    }

    /// Submits a multi-start optimization and blocks until done.
    pub fn submit_multistart(
        &mut self,
        job: &MultiStartJob,
    ) -> Result<JobOutcome<MultiStartSummary>, ClientError> {
        self.send(&ServeRequest::MultiStart(job.clone()))?;
        self.drive(&mut |_| ProgressAction::Continue, |resp| match resp {
            ServeResponse::MultiStartDone(summary) => Some(Ok(summary)),
            other => Some(Err(unexpected("MultiStartDone", &other))),
        })
    }

    /// Submits a light-cone evaluation and blocks until done.
    pub fn submit_lightcone(
        &mut self,
        job: &LightConeJob,
    ) -> Result<JobOutcome<LightConeSummary>, ClientError> {
        self.send(&ServeRequest::LightCone(job.clone()))?;
        self.drive(&mut |_| ProgressAction::Continue, |resp| match resp {
            ServeResponse::LightConeDone(summary) => Some(Ok(summary)),
            other => Some(Err(unexpected("LightConeDone", &other))),
        })
    }

    /// Reads frames until a terminal one: `Progress` goes to the
    /// callback (which may trigger a `Cancel` send), `Rejected` /
    /// `Cancelled` / `Error` terminate uniformly, and anything else is
    /// handed to `terminal` to classify.
    fn drive<T, F>(
        &mut self,
        on_progress: &mut F,
        terminal: impl Fn(ServeResponse) -> Option<Result<T, ClientError>>,
    ) -> Result<JobOutcome<T>, ClientError>
    where
        F: FnMut(ProgressSnapshot) -> ProgressAction,
    {
        loop {
            match self.recv()? {
                ServeResponse::Progress {
                    evaluated,
                    sum,
                    min_energy,
                    argmin,
                } => {
                    let snapshot = ProgressSnapshot {
                        evaluated,
                        sum,
                        min_energy: (!min_energy.is_nan()).then_some(min_energy),
                        argmin: (argmin != u64::MAX).then_some(argmin),
                    };
                    if on_progress(snapshot) == ProgressAction::Cancel {
                        self.send(&ServeRequest::Cancel)?;
                    }
                }
                ServeResponse::Rejected {
                    outstanding,
                    capacity,
                } => {
                    return Ok(JobOutcome::Rejected {
                        outstanding,
                        capacity,
                    })
                }
                ServeResponse::Cancelled { evaluated } => {
                    return Ok(JobOutcome::Cancelled { evaluated })
                }
                ServeResponse::Error(m) => return Err(ClientError::Server(m)),
                other => match terminal(other) {
                    Some(Ok(t)) => return Ok(JobOutcome::Done(t)),
                    Some(Err(e)) => return Err(e),
                    None => unreachable!("terminal classifier must decide"),
                },
            }
        }
    }
}

fn unexpected(wanted: &str, got: &ServeResponse) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}
