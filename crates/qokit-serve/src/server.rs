//! The long-lived serve loop: loopback-TCP accept loop, bounded job
//! queue with admission control, subset-pool lane workers, per-job
//! deadlines + cooperative cancellation, and progress streaming.
//!
//! # Architecture
//!
//! ```text
//!           accept loop (non-blocking poll)
//!                │ one thread per connection
//!                ▼
//!   connection handler ──admission──▶ bounded queue ──▶ lane workers
//!     reads frames, answers           (outstanding ≤        │ each owns a
//!     Ping/CacheStats inline,          QOKIT_SERVE_QUEUE,    │ disjoint
//!     submits jobs, then polls         else Rejected)        │ SubsetPool
//!     for Cancel / disconnect                                ▼
//!                ▲                                   run job (sweep /
//!                └────── progress + terminal frames ─ multistart /
//!                        through one shared writer    lightcone)
//! ```
//!
//! Admission counts **outstanding** jobs (queued + running), so a
//! saturated server answers `Rejected` deterministically and never
//! hangs a client. Every job carries an `Arc<AtomicBool>` cancel token:
//! an explicit `Cancel` frame, a deadline watchdog (checked in the
//! energy sink / objective), or a write failure to a disconnected
//! client all set it, and the compute layers stop at their next
//! checkpoint ([`SweepRunner::scan_into_cancellable`],
//! [`MultiStart::try_minimize_cancellable`]) — freeing the lane while
//! sibling jobs finish bit-identically.

use crate::cache::PrecomputeCache;
use crate::proto::{
    decode_request, encode_response, LightConeJob, LightConeSummary, MultiStartJob,
    MultiStartSummary, ServeRequest, ServeResponse, SweepJob, SweepSummary,
};
use qokit_core::batch::{SweepError, SweepNesting, SweepOptions, SweepPoint, SweepRunner};
use qokit_core::landscape::{EnergySink, LandscapeAggregator};
use qokit_core::lightcone::{LightConeEvaluator, LightConeOptions};
use qokit_dist::frame::{read_frame, write_frame, FrameReadError};
use qokit_dist::PointSource;
use qokit_optim::{MultiStart, MultiStartError, NelderMead, RestartMethod};
use qokit_statevec::exec::ExecPolicy;
use qokit_terms::graphs::Graph;
use std::collections::VecDeque;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Listen address (`host:port`); port `0` picks a free port.
pub const SERVE_ADDR_ENV: &str = "QOKIT_SERVE_ADDR";
/// Outstanding-job budget (queued + running) for admission control.
pub const SERVE_QUEUE_ENV: &str = "QOKIT_SERVE_QUEUE";
/// Precompute-cache byte budget.
pub const SERVE_CACHE_BYTES_ENV: &str = "QOKIT_SERVE_CACHE_BYTES";

/// Poll interval of the accept loop and the mid-job Cancel/disconnect
/// poll — bounds how stale a shutdown or cancellation observation can be.
const POLL: Duration = Duration::from_millis(20);

/// Server construction knobs (each with a `QOKIT_SERVE_*` env override).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address; defaults to `127.0.0.1:0` (loopback, free port).
    pub addr: String,
    /// Outstanding-job budget; submissions beyond it get
    /// [`ServeResponse::Rejected`]. Defaults to 16.
    pub queue_capacity: usize,
    /// Precompute-cache byte budget. Defaults to 256 MiB.
    pub cache_bytes: usize,
    /// Lane worker threads. With `lanes > 1` and enough pool workers,
    /// each lane pins its jobs to a disjoint [`rayon::SubsetPool`] so
    /// concurrent jobs do not steal each other's work. Defaults to 2
    /// (clamped to the pool width).
    pub lanes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 16,
            cache_bytes: 256 << 20,
            lanes: 2,
        }
    }
}

impl ServerConfig {
    /// The default configuration with `QOKIT_SERVE_ADDR` /
    /// `QOKIT_SERVE_QUEUE` / `QOKIT_SERVE_CACHE_BYTES` applied on top.
    pub fn from_env() -> Self {
        let mut cfg = ServerConfig::default();
        if let Ok(addr) = std::env::var(SERVE_ADDR_ENV) {
            cfg.addr = addr;
        }
        if let Some(cap) = env_usize(SERVE_QUEUE_ENV) {
            cfg.queue_capacity = cap.max(1);
        }
        if let Some(bytes) = env_usize(SERVE_CACHE_BYTES_ENV) {
            cfg.cache_bytes = bytes;
        }
        cfg
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One job's write side + lifecycle flags, shared between its connection
/// handler and the lane executing it. All frames for one connection go
/// through the `stream` mutex, so lane writes (progress, terminal) and
/// handler writes can never interleave mid-frame.
struct JobConn {
    stream: Mutex<TcpStream>,
    /// Cooperative cancel token: explicit `Cancel`, deadline expiry, or
    /// client disconnect all set it.
    cancel: Arc<AtomicBool>,
    /// Set by the lane after the terminal frame is written (or the
    /// client is known dead); the handler then resumes its request loop.
    done: Arc<AtomicBool>,
}

impl JobConn {
    /// Writes one response frame; a failed write means the client is
    /// gone, which cancels the job so the lane frees itself.
    fn send(&self, resp: &ServeResponse) {
        let payload = encode_response(resp);
        let mut stream = self.stream.lock().unwrap();
        if write_frame(&mut *stream, &payload).is_err() {
            self.cancel.store(true, Ordering::Relaxed);
        }
    }
}

enum JobKind {
    Sweep(SweepJob),
    MultiStart(MultiStartJob),
    LightCone(LightConeJob),
}

struct QueuedJob {
    kind: JobKind,
    conn: Arc<JobConn>,
}

struct Queue {
    jobs: VecDeque<QueuedJob>,
    /// Queued + running jobs — the quantity admission control bounds.
    outstanding: usize,
}

struct Shared {
    cache: PrecomputeCache,
    queue: Mutex<Queue>,
    available: Condvar,
    capacity: usize,
    shutdown: AtomicBool,
}

/// A bound, not-yet-running server. [`Server::run`] blocks the calling
/// thread; [`Server::spawn_thread`] runs it on a background thread and
/// returns a handle (the in-process form the tests and examples use).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    lanes: usize,
}

impl Server {
    /// Binds the listen socket and builds the shared state.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                cache: PrecomputeCache::new(config.cache_bytes),
                queue: Mutex::new(Queue {
                    jobs: VecDeque::new(),
                    outstanding: 0,
                }),
                available: Condvar::new(),
                capacity: config.queue_capacity.max(1),
                shutdown: AtomicBool::new(false),
            }),
            lanes: config.lanes.max(1),
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a client sends [`ServeRequest::Shutdown`]: spawns the
    /// lane workers, then accepts connections, one handler thread each.
    /// Queued jobs are drained before the lanes exit.
    pub fn run(self) {
        let width = rayon::current_num_threads().max(1);
        let lanes = self.lanes.clamp(1, width);
        // Disjoint worker subsets, one per lane, when the pool is wide
        // enough to give every lane at least one worker. A single lane
        // (or a 1-worker pool) runs jobs on the ambient pool instead.
        let subsets = if lanes > 1 {
            rayon::split_current(&vec![width / lanes; lanes])
        } else {
            Vec::new()
        };
        let mut lane_threads = Vec::with_capacity(lanes);
        for lane in 0..lanes {
            let shared = Arc::clone(&self.shared);
            let subset = subsets.get(lane).cloned();
            lane_threads.push(std::thread::spawn(move || lane_loop(shared, subset)));
        }

        while !self.shared.shutdown.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    // Handler threads exit with their connection; they are
                    // not joined (a lingering idle client must not block
                    // shutdown).
                    std::thread::spawn(move || handle_connection(stream, shared));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(_) => break,
            }
        }
        // Wake idle lanes so they can observe the shutdown flag; they
        // drain any queued jobs first.
        self.shared.available.notify_all();
        for t in lane_threads {
            t.join().ok();
        }
    }

    /// Runs the server on a background thread, returning its address and
    /// a handle that joins on drop-free shutdown.
    pub fn spawn_thread(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let thread = std::thread::spawn(move || self.run());
        Ok(ServerHandle { addr, thread })
    }
}

/// Handle to an in-process server thread (see [`Server::spawn_thread`]).
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The server's listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the serve loop to exit (after a client `Shutdown`).
    pub fn join(self) {
        self.thread.join().ok();
    }
}

/// Serves one connection: answer control requests inline, run at most
/// one job at a time, and while a job is in flight poll the socket for
/// an explicit `Cancel` frame or a disconnect (both cancel the job).
fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    stream.set_nodelay(true).ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut read_half = read_half;
    let conn_stream = Mutex::new(stream);
    // Requests that arrived during a job (a client may pipeline its next
    // submission right behind a terminal frame) — served before reading
    // from the socket again.
    let mut pending: VecDeque<ServeRequest> = VecDeque::new();

    loop {
        let req = if let Some(req) = pending.pop_front() {
            req
        } else {
            let Ok((payload, _)) = read_frame(&mut read_half) else {
                return; // disconnect or corrupt frame outside a job: drop
            };
            match decode_request(&payload) {
                Ok(req) => req,
                Err(e) => {
                    send_on(
                        &conn_stream,
                        &ServeResponse::Error(format!("bad request: {e}")),
                    );
                    continue;
                }
            }
        };
        let kind = match req {
            ServeRequest::Ping => {
                send_on(&conn_stream, &ServeResponse::Pong);
                continue;
            }
            ServeRequest::CacheStats => {
                send_on(
                    &conn_stream,
                    &ServeResponse::CacheStats(shared.cache.stats()),
                );
                continue;
            }
            ServeRequest::Shutdown => {
                shared.shutdown.store(true, Ordering::Relaxed);
                shared.available.notify_all();
                send_on(&conn_stream, &ServeResponse::Ok);
                return;
            }
            // Cancel frames never get a direct reply (a job answers with
            // its Cancelled terminal frame); one racing past a job's
            // completion is dropped rather than desyncing the stream.
            ServeRequest::Cancel => continue,
            ServeRequest::Sweep(job) => JobKind::Sweep(job),
            ServeRequest::MultiStart(job) => JobKind::MultiStart(job),
            ServeRequest::LightCone(job) => JobKind::LightCone(job),
        };

        // Admission control: bound *outstanding* (queued + running) jobs.
        // Counting from enqueue to terminal frame makes saturation
        // deterministic — a second submission while any job is in flight
        // on a capacity-1 server is always Rejected, no timing races.
        let conn = {
            let mut q = shared.queue.lock().unwrap();
            if q.outstanding >= shared.capacity {
                let outstanding = q.outstanding as u64;
                drop(q);
                send_on(
                    &conn_stream,
                    &ServeResponse::Rejected {
                        outstanding,
                        capacity: shared.capacity as u64,
                    },
                );
                continue;
            }
            q.outstanding += 1;
            let Ok(writer) = conn_stream.lock().unwrap().try_clone() else {
                q.outstanding -= 1;
                return;
            };
            let conn = Arc::new(JobConn {
                stream: Mutex::new(writer),
                cancel: Arc::new(AtomicBool::new(false)),
                done: Arc::new(AtomicBool::new(false)),
            });
            q.jobs.push_back(QueuedJob {
                kind,
                conn: Arc::clone(&conn),
            });
            shared.available.notify_one();
            conn
        };

        // Mid-job poll: watch for Cancel frames or EOF without consuming
        // partial frames (peek first, then do a blocking frame read).
        read_half.set_read_timeout(Some(POLL)).ok();
        while !conn.done.load(Ordering::Relaxed) {
            let mut probe = [0u8; 1];
            match read_half.peek(&mut probe) {
                Ok(0) => {
                    // Client hung up mid-job: cancel so the lane reaps
                    // the job, then drop the connection.
                    conn.cancel.store(true, Ordering::Relaxed);
                    return;
                }
                Ok(_) => {
                    read_half.set_read_timeout(None).ok();
                    let frame = read_frame(&mut read_half);
                    read_half.set_read_timeout(Some(POLL)).ok();
                    match frame {
                        Ok((payload, _)) => match decode_request(&payload) {
                            Ok(ServeRequest::Cancel) => conn.cancel.store(true, Ordering::Relaxed),
                            // The client's next request, pipelined behind
                            // our terminal frame — serve it after this
                            // job ends.
                            Ok(req) => pending.push_back(req),
                            Err(e) => conn.send(&ServeResponse::Error(format!("bad request: {e}"))),
                        },
                        Err(FrameReadError::Io(_)) | Err(FrameReadError::Wire(_)) => {
                            conn.cancel.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => {
                    conn.cancel.store(true, Ordering::Relaxed);
                    return;
                }
            }
        }
        read_half.set_read_timeout(None).ok();
    }
}

fn send_on(stream: &Mutex<TcpStream>, resp: &ServeResponse) {
    let payload = encode_response(resp);
    let mut s = stream.lock().unwrap();
    write_frame(&mut *s, &payload).ok();
}

/// One lane worker: pop jobs, run them (inside this lane's subset pool
/// when one was carved out), write the terminal frame, release the
/// admission slot. Panics inside a job are contained per-job — the lane
/// itself never dies.
fn lane_loop(shared: Arc<Shared>, subset: Option<rayon::SubsetPool>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                q = shared.available.wait(q).unwrap();
            }
        };
        let run = || run_job(&shared, &job);
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| match &subset {
            Some(s) => s.install(run),
            None => run(),
        }));
        let resp = match outcome {
            Ok(resp) => resp,
            Err(payload) => {
                ServeResponse::Error(format!("job panicked: {}", panic_message(payload)))
            }
        };
        // Ordering matters, twice. `done` before the terminal write: the
        // handler may then stop polling and block on the next request
        // while the frame is still in flight (reads and writes are
        // independent socket directions); set afterwards, a fast client's
        // next request could race into the still-polling handler. The
        // admission slot before the terminal write: a client that has
        // seen a terminal frame must never have its follow-up submission
        // rejected by a slot its own finished job still holds.
        job.conn.done.store(true, Ordering::Relaxed);
        shared.queue.lock().unwrap().outstanding -= 1;
        job.conn.send(&resp);
    }
}

fn deadline_of(deadline_ms: u64) -> Option<Instant> {
    (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(deadline_ms))
}

fn run_job(shared: &Shared, job: &QueuedJob) -> ServeResponse {
    match &job.kind {
        JobKind::Sweep(sweep) => run_sweep(shared, sweep, &job.conn),
        JobKind::MultiStart(ms) => run_multistart(shared, ms, &job.conn),
        JobKind::LightCone(lc) => run_lightcone(lc, &job.conn),
    }
}

/// Energy sink wrapping the [`LandscapeAggregator`]: every observation
/// checks the deadline (setting the cancel token on expiry, honored at
/// the next chunk boundary) and, every `every` points, streams a
/// snapshot frame to the client.
struct ProgressSink<'a> {
    agg: LandscapeAggregator,
    every: u64,
    next_emit: u64,
    deadline: Option<Instant>,
    conn: &'a JobConn,
}

impl ProgressSink<'_> {
    fn snapshot(&self) -> ServeResponse {
        ServeResponse::Progress {
            evaluated: self.agg.count(),
            sum: self.agg.sum(),
            min_energy: self.agg.min_energy().unwrap_or(f64::NAN),
            argmin: self.agg.argmin().unwrap_or(u64::MAX),
        }
    }
}

impl EnergySink for ProgressSink<'_> {
    fn observe(&mut self, index: u64, energy: f64) {
        self.agg.observe(index, energy);
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.conn.cancel.store(true, Ordering::Relaxed);
            }
        }
        if self.every > 0 && self.agg.count() >= self.next_emit {
            self.next_emit = self.agg.count() + self.every;
            let frame = self.snapshot();
            self.conn.send(&frame);
        }
    }
}

fn run_sweep(shared: &Shared, job: &SweepJob, conn: &JobConn) -> ServeResponse {
    let (sim, cache_hit) = shared.cache.get_or_build(&job.poly, job.spec);
    // Points-parallel with serial per-point kernels: the pinned
    // bit-identical-at-any-pool-size engine, so a serve-lane result
    // matches a one-shot `SweepRunner` scan bit for bit.
    let runner = SweepRunner::from_arc(
        sim,
        SweepOptions {
            exec: ExecPolicy::auto().with_layout(job.spec.layout),
            nested: SweepNesting::PointsParallel,
        },
    );
    let mut sink = ProgressSink {
        agg: LandscapeAggregator::new(job.top_k),
        every: job.progress_every,
        next_emit: job.progress_every.max(1),
        deadline: deadline_of(job.deadline_ms),
        conn,
    };
    let grid = job.grid;
    let points = (0..grid.len()).map(move |i| grid.point(i));
    match runner.scan_into_cancellable(points, job.chunk.max(1), &mut sink, &conn.cancel) {
        Ok(evaluated) => ServeResponse::SweepDone(SweepSummary {
            evaluated,
            sum: sink.agg.sum(),
            min_energy: sink.agg.min_energy().unwrap_or(f64::NAN),
            argmin: sink.agg.argmin().unwrap_or(u64::MAX),
            top_k: sink.agg.top_k().to_vec(),
            cache_hit,
        }),
        Err(SweepError::Cancelled { evaluated }) => ServeResponse::Cancelled { evaluated },
        Err(e) => ServeResponse::Error(e.to_string()),
    }
}

fn run_multistart(shared: &Shared, job: &MultiStartJob, conn: &JobConn) -> ServeResponse {
    if job.bounds.len() != 2 * job.depth || job.depth == 0 {
        return ServeResponse::Error(format!(
            "multistart bounds must have length 2*depth (= {}), got {}",
            2 * job.depth,
            job.bounds.len()
        ));
    }
    if job.restarts == 0 {
        return ServeResponse::Error("multistart needs at least one restart".into());
    }
    let (sim, cache_hit) = shared.cache.get_or_build(&job.poly, job.spec);
    let runner = SweepRunner::from_arc(
        sim,
        SweepOptions {
            exec: ExecPolicy::serial().with_layout(job.spec.layout),
            nested: SweepNesting::PointsParallel,
        },
    );
    let driver = MultiStart {
        method: RestartMethod::NelderMead(NelderMead::default()),
        restarts: job.restarts,
        seed: job.seed,
        bounds: job.bounds.clone(),
    };
    let p = job.depth;
    let deadline = deadline_of(job.deadline_ms);
    let cancel = &conn.cancel;
    let objective = move |x: &[f64]| {
        if let Some(d) = deadline {
            if Instant::now() >= d {
                cancel.store(true, Ordering::Relaxed);
            }
        }
        let point = SweepPoint::new(x[..p].to_vec(), x[p..].to_vec());
        runner.energies(std::slice::from_ref(&point))[0]
    };
    match driver.try_minimize_cancellable(&objective, cancel) {
        Ok(run) => ServeResponse::MultiStartDone(MultiStartSummary {
            best_restart: run.best_restart as u64,
            best_f: run.best().best_f,
            best_x: run.best().best_x.clone(),
            restart_best_fs: run.restarts.iter().map(|r| r.best_f).collect(),
            cache_hit,
        }),
        Err(MultiStartError::Cancelled { completed }) => ServeResponse::Cancelled {
            evaluated: completed as u64,
        },
        Err(e) => ServeResponse::Error(e.to_string()),
    }
}

fn run_lightcone(job: &LightConeJob, conn: &JobConn) -> ServeResponse {
    // Light-cone evaluation has no chunk loop to checkpoint; honor a
    // cancellation or an already-expired deadline before starting (a
    // cone batch is short — bounded by `max_cone_qubits`).
    if let Some(d) = deadline_of(job.deadline_ms) {
        if Instant::now() >= d {
            conn.cancel.store(true, Ordering::Relaxed);
        }
    }
    if conn.cancel.load(Ordering::Relaxed) {
        return ServeResponse::Cancelled { evaluated: 0 };
    }
    let graph = Graph::new(job.n_vertices, job.edges.clone());
    let n_edges = graph.n_edges() as u64;
    let evaluator = LightConeEvaluator::with_options(
        graph,
        LightConeOptions {
            max_cone_qubits: job.max_cone_qubits,
            ..Default::default()
        },
    );
    match evaluator.try_energy(&job.gammas, &job.betas) {
        Ok(run) => ServeResponse::LightConeDone(LightConeSummary {
            energy: run.energy,
            edges: n_edges,
            unique_cones: run.stats.unique_cones as u64,
            cache_hits: run.stats.cache_hits as u64,
        }),
        Err(e) => ServeResponse::Error(e.to_string()),
    }
}
