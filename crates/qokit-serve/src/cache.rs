//! Problem-keyed precompute cache — the paper's amortization argument
//! (precompute the `2^n` cost diagonal once, reuse it across thousands of
//! parameter evaluations; Lykov et al., SC 2023 §IV) made persistent
//! across jobs in a long-lived server.
//!
//! Keys are the *full canonical encoding* of `(spec, polynomial)` — the
//! spec byte followed by `n_vars` and every `(weight bits, mask)` term —
//! hashed with FNV-1a-64 for bucket placement but compared byte-for-byte,
//! so two polynomials with the same terms on different variable counts
//! (different `n` → different `2^n` diagonal) can never collide into one
//! entry. Values are `Arc<FurSimulator>` (the simulator owns the
//! [`CostVec`](qokit_costvec::CostVec)); eviction is LRU by **resident
//! cost-vector bytes** against a byte budget, never by entry count, so a
//! few 26-qubit diagonals and many 16-qubit ones get the same treatment.

use crate::proto::CacheStatsView;
use qokit_core::simulator::{FurSimulator, InitialState, SimOptions};
use qokit_core::{Mixer, QaoaSimulator};
use qokit_dist::frame::{fnv1a64, ByteWriter};
use qokit_dist::wire::{put_poly, spec_byte, SweepSimSpec};
use qokit_statevec::exec::ExecPolicy;
use qokit_terms::SpinPolynomial;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Canonical cache key: the byte encoding of `(spec, polynomial)`.
/// Hashed by FNV-1a-64, compared by full bytes (collision-proof).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheKey {
    bytes: Vec<u8>,
}

impl CacheKey {
    /// The key for `poly` under simulator spec `spec`.
    pub fn new(poly: &SpinPolynomial, spec: SweepSimSpec) -> Self {
        let mut w = ByteWriter::new();
        w.u8(spec_byte(&spec));
        put_poly(&mut w, poly);
        CacheKey {
            bytes: w.into_vec(),
        }
    }

    /// The key's FNV-1a-64 hash (bucket placement only; equality is on
    /// the full encoding).
    pub fn hash64(&self) -> u64 {
        fnv1a64(&self.bytes)
    }
}

impl std::hash::Hash for CacheKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash64());
    }
}

struct Entry {
    sim: Arc<FurSimulator>,
    bytes: usize,
    last_used: u64,
}

struct Inner {
    map: HashMap<CacheKey, Entry>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Thread-safe LRU-by-bytes cache of precomputed simulators.
///
/// A single entry larger than the whole budget is admitted alone (the job
/// that built it needs it resident anyway) and becomes the next eviction
/// victim; everything else is evicted least-recently-used until the
/// resident cost-vector bytes fit the budget again.
pub struct PrecomputeCache {
    inner: Mutex<Inner>,
    capacity_bytes: usize,
}

impl PrecomputeCache {
    /// An empty cache with a resident-bytes budget.
    pub fn new(capacity_bytes: usize) -> Self {
        PrecomputeCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity_bytes,
        }
    }

    /// The byte budget evictions keep the cache under.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// The simulator for `(poly, spec)`, from cache when resident
    /// (refreshing its recency) or freshly built. The boolean is `true`
    /// on a cache hit. The build runs outside the cache lock, so a slow
    /// `2^n` precompute never blocks sibling lanes' lookups; when two
    /// lanes race to build the same key the first insert wins and the
    /// loser adopts it.
    ///
    /// The simulator is built exactly as the transport workers build
    /// theirs (serial kernels, X mixer, `Auto` initial state), so cached
    /// and freshly built evaluations are bit-identical.
    pub fn get_or_build(
        &self,
        poly: &SpinPolynomial,
        spec: SweepSimSpec,
    ) -> (Arc<FurSimulator>, bool) {
        let key = CacheKey::new(poly, spec);
        {
            let mut inner = self.inner.lock().unwrap();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(&key) {
                entry.last_used = tick;
                let sim = Arc::clone(&entry.sim);
                inner.hits += 1;
                return (sim, true);
            }
            inner.misses += 1;
        }
        let sim = Arc::new(build_simulator(poly, spec));
        let bytes = sim.cost_diagonal().memory_bytes();
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(&key) {
            // Lost a build race; adopt the resident entry.
            entry.last_used = tick;
            return (Arc::clone(&entry.sim), false);
        }
        inner.map.insert(
            key.clone(),
            Entry {
                sim: Arc::clone(&sim),
                bytes,
                last_used: tick,
            },
        );
        inner.bytes += bytes;
        self.evict_over_budget(&mut inner, &key);
        (sim, false)
    }

    /// Evicts least-recently-used entries (never `just_inserted`) until
    /// the resident bytes fit the budget.
    fn evict_over_budget(&self, inner: &mut Inner, just_inserted: &CacheKey) {
        while inner.bytes > self.capacity_bytes {
            let victim = inner
                .map
                .iter()
                .filter(|(k, _)| *k != just_inserted)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else {
                return; // only the fresh entry remains; admit it oversized
            };
            if let Some(e) = inner.map.remove(&victim) {
                inner.bytes -= e.bytes;
                inner.evictions += 1;
            }
        }
    }

    /// `true` when `(poly, spec)` is resident. Does **not** refresh
    /// recency — safe for assertions.
    pub fn contains(&self, poly: &SpinPolynomial, spec: SweepSimSpec) -> bool {
        let key = CacheKey::new(poly, spec);
        self.inner.lock().unwrap().map.contains_key(&key)
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot (the [`crate::proto::ServeResponse::CacheStats`]
    /// payload).
    pub fn stats(&self) -> CacheStatsView {
        let inner = self.inner.lock().unwrap();
        CacheStatsView {
            entries: inner.map.len() as u64,
            bytes: inner.bytes as u64,
            capacity_bytes: self.capacity_bytes as u64,
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
        }
    }
}

/// Builds the shared simulator for a serve job: serial kernels with the
/// spec's layout — the same construction as the transport workers'
/// `sweep_runner_for`, so every execution context (one-shot API, rank
/// worker, serve lane) produces bit-identical energies.
pub fn build_simulator(poly: &SpinPolynomial, spec: SweepSimSpec) -> FurSimulator {
    let exec = ExecPolicy::serial().with_layout(spec.layout);
    FurSimulator::with_options(
        poly,
        SimOptions {
            mixer: Mixer::X,
            exec,
            precompute: spec.precompute,
            quantize_u16: spec.quantize_u16,
            initial: InitialState::Auto,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qokit_costvec::PrecomputeMethod;
    use qokit_statevec::exec::Layout;
    use qokit_terms::labs::labs_terms;
    use qokit_terms::Term;

    fn spec() -> SweepSimSpec {
        SweepSimSpec {
            precompute: PrecomputeMethod::Direct,
            quantize_u16: false,
            layout: Layout::Interleaved,
        }
    }

    /// Bytes of one n-qubit F64 cost vector.
    fn cost_bytes(n: usize) -> usize {
        (1usize << n) * 8
    }

    #[test]
    fn hit_on_second_identical_lookup() {
        let cache = PrecomputeCache::new(1 << 20);
        let poly = labs_terms(6);
        let (a, hit_a) = cache.get_or_build(&poly, spec());
        let (b, hit_b) = cache.get_or_build(&poly, spec());
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!(s.bytes, cost_bytes(6) as u64);
    }

    #[test]
    fn same_terms_different_n_are_distinct_keys() {
        // Identical term lists over different variable counts must not
        // collide: the diagonal has 2^n entries.
        let terms = vec![Term {
            weight: 1.0,
            mask: 0b11,
        }];
        let p5 = SpinPolynomial::new(5, terms.clone());
        let p6 = SpinPolynomial::new(6, terms);
        assert_ne!(CacheKey::new(&p5, spec()), CacheKey::new(&p6, spec()));

        let cache = PrecomputeCache::new(1 << 20);
        let (a, _) = cache.get_or_build(&p5, spec());
        let (b, hit) = cache.get_or_build(&p6, spec());
        assert!(!hit, "different n must be a miss");
        assert_eq!(cache.len(), 2);
        assert_eq!(a.n_qubits(), 5);
        assert_eq!(b.n_qubits(), 6);
    }

    #[test]
    fn spec_is_part_of_the_key() {
        let cache = PrecomputeCache::new(1 << 20);
        let poly = labs_terms(6);
        cache.get_or_build(&poly, spec());
        let (_, hit) = cache.get_or_build(
            &poly,
            SweepSimSpec {
                precompute: PrecomputeMethod::Fwht,
                ..spec()
            },
        );
        assert!(!hit, "different spec must be a miss");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_eviction_order_respects_recency() {
        // Budget fits exactly two 6-qubit diagonals.
        let cache = PrecomputeCache::new(2 * cost_bytes(6));
        let a = labs_terms(6);
        let b = SpinPolynomial::new(
            6,
            vec![Term {
                weight: 2.0,
                mask: 0b101,
            }],
        );
        let c = SpinPolynomial::new(
            6,
            vec![Term {
                weight: -1.0,
                mask: 0b110,
            }],
        );

        cache.get_or_build(&a, spec());
        cache.get_or_build(&b, spec());
        assert_eq!(cache.len(), 2);

        // Touch A so B becomes least-recently-used, then insert C.
        let (_, hit) = cache.get_or_build(&a, spec());
        assert!(hit);
        cache.get_or_build(&c, spec());

        assert!(cache.contains(&a, spec()), "recently used entry must stay");
        assert!(!cache.contains(&b, spec()), "LRU entry must be evicted");
        assert!(cache.contains(&c, spec()));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn byte_budget_accounting_tracks_entry_sizes() {
        // 5-, 6-, 7-qubit diagonals: 256 + 512 + 1024 bytes.
        let cache = PrecomputeCache::new(cost_bytes(5) + cost_bytes(6) + cost_bytes(7));
        cache.get_or_build(&labs_terms(5), spec());
        cache.get_or_build(&labs_terms(6), spec());
        cache.get_or_build(&labs_terms(7), spec());
        let s = cache.stats();
        assert_eq!(
            s.bytes as usize,
            cost_bytes(5) + cost_bytes(6) + cost_bytes(7)
        );
        assert_eq!(s.evictions, 0);

        // One more 7-qubit entry (1024 bytes) overshoots the 1792-byte
        // budget by exactly its own size: LRU eviction walks oldest-first
        // (5-, 6-, then the first 7-qubit entry) until the total fits,
        // leaving only the new entry resident.
        let d = SpinPolynomial::new(
            7,
            vec![Term {
                weight: 3.0,
                mask: 0b11,
            }],
        );
        cache.get_or_build(&d, spec());
        let s = cache.stats();
        assert_eq!(s.bytes as usize, cost_bytes(7));
        assert_eq!(s.entries, 1);
        assert_eq!(s.evictions, 3);
        assert!(!cache.contains(&labs_terms(5), spec()));
        assert!(!cache.contains(&labs_terms(6), spec()));
        assert!(!cache.contains(&labs_terms(7), spec()));
        assert!(cache.contains(&d, spec()));
    }

    #[test]
    fn oversized_single_entry_is_admitted() {
        let cache = PrecomputeCache::new(16); // smaller than any diagonal
        let (sim, hit) = cache.get_or_build(&labs_terms(6), spec());
        assert!(!hit);
        assert_eq!(sim.n_qubits(), 6);
        assert_eq!(cache.len(), 1, "sole oversized entry stays resident");
        // The next insert evicts it immediately.
        cache.get_or_build(&labs_terms(5), spec());
        assert!(!cache.contains(&labs_terms(6), spec()));
    }

    #[test]
    fn quantized_entries_account_u16_bytes() {
        // A MaxCut-style integral polynomial quantizes to u16: 2 bytes per
        // amplitude instead of 8.
        let poly = SpinPolynomial::new(
            8,
            vec![Term {
                weight: 1.0,
                mask: 0b11,
            }],
        );
        let cache = PrecomputeCache::new(1 << 20);
        cache.get_or_build(
            &poly,
            SweepSimSpec {
                quantize_u16: true,
                ..spec()
            },
        );
        assert_eq!(cache.stats().bytes, (1u64 << 8) * 2);
    }
}
