//! Long-lived QAOA serving layer.
//!
//! A simulator restart pays the full diagonal precompute again; a
//! parameter-sweep service should pay it once per problem. This crate
//! wraps the one-shot engines ([`qokit_core::batch::SweepRunner`],
//! [`qokit_optim::MultiStart`], [`qokit_core::lightcone`]) in a
//! loopback-TCP server that keeps the expensive state alive between
//! requests:
//!
//! * **Precompute cache** ([`cache::PrecomputeCache`]) — problem-keyed
//!   (`canonical polynomial bytes + simulator spec`) map of built
//!   [`FurSimulator`](qokit_core::simulator::FurSimulator)s with
//!   LRU-by-bytes eviction and hit/miss/evict counters. A repeated
//!   submission skips straight to the evolution kernels.
//! * **Bounded job queue** ([`server::Server`]) — admission control on
//!   outstanding (queued + running) jobs; overload answers an explicit
//!   [`Rejected`](proto::ServeResponse::Rejected), never a hang. Lane
//!   workers optionally pin jobs to disjoint
//!   [`SubsetPool`](rayon::SubsetPool)s.
//! * **Deadlines + cancellation** — every job carries a cooperative
//!   cancel token; `Cancel` frames, deadline expiry, and client
//!   disconnects all stop the job at its next checkpoint and free the
//!   lane. Sibling jobs finish bit-identically.
//! * **Progress streaming** — sweep jobs emit periodic
//!   [`LandscapeAggregator`](qokit_core::landscape::LandscapeAggregator)
//!   snapshots as [`Progress`](proto::ServeResponse::Progress) frames.
//!
//! The wire protocol is the workspace's dependency-free length-prefixed
//! framing ([`qokit_dist::frame`]): magic, `u32` payload length,
//! FNV-1a-64 checksum, payload; `f64`s travel as exact IEEE-754 bits, so
//! a served result is bit-for-bit the one-shot API's result.
//!
//! # Quick start
//!
//! In-process (tests, examples):
//!
//! ```no_run
//! use qokit_serve::{Server, ServerConfig, ServeClient, SweepJob};
//!
//! let server = Server::bind(ServerConfig::default()).unwrap();
//! let handle = server.spawn_thread().unwrap();
//! let mut client = ServeClient::connect(handle.addr()).unwrap();
//! client.ping().unwrap();
//! // ... submit jobs ...
//! client.shutdown_server().unwrap();
//! handle.join();
//! ```
//!
//! As a process: run the `qokit-serve` binary; it prints
//! `SERVE_ADDR=<host:port>` on stdout once listening. Configuration via
//! `QOKIT_SERVE_ADDR`, `QOKIT_SERVE_QUEUE`, `QOKIT_SERVE_CACHE_BYTES`.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod proto;
pub mod server;

pub use cache::PrecomputeCache;
pub use client::{ClientError, JobOutcome, ProgressAction, ProgressSnapshot, ServeClient};
pub use proto::{
    CacheStatsView, LightConeJob, LightConeSummary, MultiStartJob, MultiStartSummary, ServeRequest,
    ServeResponse, SweepJob, SweepSummary,
};
pub use server::{
    Server, ServerConfig, ServerHandle, SERVE_ADDR_ENV, SERVE_CACHE_BYTES_ENV, SERVE_QUEUE_ENV,
};
