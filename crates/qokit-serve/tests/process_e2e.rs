//! Process-level end-to-end test: the real `qokit-serve` binary on real
//! loopback TCP, configured through its `QOKIT_SERVE_*` environment
//! variables, driven by `ServeClient` — the same gate CI runs.
//!
//! Covered here (and nowhere else): the `SERVE_ADDR=` stdout handshake,
//! env-var configuration, all three job kinds against a separate OS
//! process, warm-cache behaviour across requests, deterministic
//! `Rejected` under a saturated 1-slot queue, and a clean `Shutdown`
//! exit.

use qokit_core::batch::{SweepNesting, SweepOptions, SweepRunner};
use qokit_core::landscape::LandscapeAggregator;
use qokit_core::simulator::{FurSimulator, InitialState, SimOptions};
use qokit_core::Mixer;
use qokit_dist::wire::SweepSimSpec;
use qokit_dist::{Axis, Grid2d, PointSource};
use qokit_serve::proto::{LightConeJob, MultiStartJob, SweepJob};
use qokit_serve::{JobOutcome, ProgressAction, ServeClient};
use qokit_statevec::exec::ExecPolicy;
use qokit_statevec::Layout;
use qokit_terms::labs::labs_terms;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Kills the server process on drop so a failing assertion can't leak a
/// listener into the test harness.
struct ServerProcess {
    child: Child,
    addr: String,
}

impl Drop for ServerProcess {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

fn spawn_server(queue_capacity: usize) -> ServerProcess {
    let mut child = Command::new(env!("CARGO_BIN_EXE_qokit-serve"))
        .env("QOKIT_SERVE_ADDR", "127.0.0.1:0")
        .env("QOKIT_SERVE_QUEUE", queue_capacity.to_string())
        .env("QOKIT_SERVE_CACHE_BYTES", (64u64 << 20).to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn qokit-serve binary");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read handshake line");
    let addr = line
        .trim()
        .strip_prefix("SERVE_ADDR=")
        .unwrap_or_else(|| panic!("expected SERVE_ADDR=<addr> handshake, got {line:?}"))
        .to_string();
    ServerProcess { child, addr }
}

fn spec() -> SweepSimSpec {
    SweepSimSpec {
        precompute: qokit_costvec::PrecomputeMethod::Direct,
        quantize_u16: false,
        layout: Layout::Interleaved,
    }
}

fn sweep_job() -> SweepJob {
    SweepJob {
        poly: labs_terms(8),
        spec: spec(),
        grid: Grid2d::new(Axis::new(-0.5, 0.5, 6), Axis::new(-0.4, 0.4, 5)),
        top_k: 3,
        chunk: 5,
        deadline_ms: 0,
        progress_every: 0,
    }
}

#[test]
fn binary_serves_all_job_kinds_with_cache_and_admission_control() {
    let server = spawn_server(1);
    let mut client = ServeClient::connect(&server.addr).expect("connect to spawned server");
    client.ping().expect("ping");

    // --- Sweep: bit-identical to the one-shot engine in THIS process ---
    let job = sweep_job();
    let served = client
        .submit_sweep(&job, |_| ProgressAction::Continue)
        .expect("sweep rpc")
        .done()
        .expect("sweep completed");
    assert!(!served.cache_hit);

    let exec = ExecPolicy::serial().with_layout(spec().layout);
    let runner = SweepRunner::with_options(
        FurSimulator::with_options(
            &job.poly,
            SimOptions {
                mixer: Mixer::X,
                exec,
                precompute: spec().precompute,
                quantize_u16: spec().quantize_u16,
                initial: InitialState::Auto,
            },
        ),
        SweepOptions {
            exec,
            nested: SweepNesting::PointsParallel,
        },
    );
    let mut oracle = LandscapeAggregator::new(job.top_k);
    runner
        .scan_into(
            (0..job.grid.len()).map(|i| job.grid.point(i)),
            job.chunk,
            &mut oracle,
        )
        .expect("local scan");
    assert_eq!(served.sum.to_bits(), oracle.sum().to_bits());
    assert_eq!(
        served.min_energy.to_bits(),
        oracle.min_energy().unwrap().to_bits()
    );
    assert_eq!(served.argmin, oracle.argmin().unwrap());

    // --- Identical resubmission: the cross-request precompute cache ----
    let warm = client
        .submit_sweep(&job, |_| ProgressAction::Continue)
        .expect("warm rpc")
        .done()
        .expect("warm completed");
    assert!(
        warm.cache_hit,
        "second identical submission must hit the cache"
    );
    assert_eq!(warm.sum.to_bits(), served.sum.to_bits());
    let stats = client.cache_stats().expect("stats");
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.misses, 1);
    assert!(stats.hits >= 1);

    // --- MultiStart + LightCone over the same connection ---------------
    let ms = client
        .submit_multistart(&MultiStartJob {
            poly: labs_terms(8),
            spec: spec(),
            depth: 1,
            restarts: 2,
            seed: 5,
            bounds: vec![(-0.5, 0.5), (-0.4, 0.4)],
            deadline_ms: 0,
        })
        .expect("multistart rpc")
        .done()
        .expect("multistart completed");
    assert!(ms.best_f.is_finite());
    assert!(ms.cache_hit, "labs(8) + same spec is already cached");

    let ring: Vec<(usize, usize, f64)> = (0..64).map(|i| (i, (i + 1) % 64, 1.0)).collect();
    let lc = client
        .submit_lightcone(&LightConeJob {
            n_vertices: 64,
            edges: ring,
            gammas: vec![0.4],
            betas: vec![0.6],
            max_cone_qubits: 22,
            deadline_ms: 0,
        })
        .expect("lightcone rpc")
        .done()
        .expect("lightcone completed");
    assert!(lc.energy.is_finite());
    assert_eq!(lc.edges, 64);
    assert_eq!(lc.unique_cones, 1, "every ring cone is the same local line");

    // --- Saturated 1-slot queue: clean Rejected, never a hang ----------
    let addr = server.addr.clone();
    let a_started = Arc::new(AtomicBool::new(false));
    let b_decided = Arc::new(AtomicBool::new(false));
    let slow = SweepJob {
        grid: Grid2d::new(Axis::new(-0.5, 0.5, 48), Axis::new(-0.4, 0.4, 48)),
        chunk: 1,
        progress_every: 1,
        ..sweep_job()
    };
    let submitter = {
        let (a_started, b_decided) = (Arc::clone(&a_started), Arc::clone(&b_decided));
        std::thread::spawn(move || {
            let mut a = ServeClient::connect(&addr).expect("connect A");
            a.submit_sweep(&slow, |_| {
                a_started.store(true, Ordering::Relaxed);
                if b_decided.load(Ordering::Relaxed) {
                    ProgressAction::Cancel
                } else {
                    ProgressAction::Continue
                }
            })
            .expect("rpc A")
        })
    };
    let wait_start = Instant::now();
    while !a_started.load(Ordering::Relaxed) {
        assert!(
            wait_start.elapsed() < Duration::from_secs(30),
            "job A never started streaming progress"
        );
        std::thread::yield_now();
    }
    match client
        .submit_sweep(&sweep_job(), |_| ProgressAction::Continue)
        .expect("rpc B")
    {
        JobOutcome::Rejected {
            outstanding,
            capacity,
        } => {
            assert_eq!((outstanding, capacity), (1, 1));
        }
        other => panic!("expected Rejected from the saturated queue, got {other:?}"),
    }
    b_decided.store(true, Ordering::Relaxed);
    assert!(matches!(
        submitter.join().expect("thread A"),
        JobOutcome::Cancelled { .. }
    ));

    // --- Clean shutdown: the process exits on its own ------------------
    client.shutdown_server().expect("shutdown");
    drop(client);
    let mut server = server;
    let exit_deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match server.child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "server exited with {status}");
                break;
            }
            None => {
                assert!(
                    Instant::now() < exit_deadline,
                    "server did not exit after Shutdown"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}
