//! # qokit-tensornet
//!
//! The tensor-network **backend** of the QOKit reproduction — the
//! stand-in for cuTensorNet/QTensor in Fig. 3 of *Fast Simulation of
//! High-Depth QAOA Circuits*. Builds the amplitude network
//! `⟨x|QAOA(γ,β)|+⟩` with diagonal cost terms as hyperedge tensors (the
//! diagonal-gate trick of the paper's Ref. \[23\]) and contracts it three
//! ways:
//!
//! * [`qaoa_amplitude`] — the original greedy pairwise contraction, kept
//!   as the ablation baseline;
//! * [`ContractionPlan`] — a line-graph / min-fill ordering planned once
//!   from the network structure and replayed for every `(γ, β, x)`;
//! * [`SlicePlan`] / [`TnEngine`] — when the planned width exceeds the
//!   cap, slice legs are fixed and the `2^k` projected networks contract
//!   as pool tasks with fixed-order accumulation (bit-identical at every
//!   pool width).
//!
//! Deep LABS circuits still drive the contraction width toward `n` — the
//! paper's argument for state-vector simulation at high depth — and the
//! [`TnEngine`] surfaces that as a [`TnError::WidthExceeded`] only after
//! slicing has been exhausted. The crossover decision itself (TN for
//! shallow/sparse, statevec for deep/dense) lives in
//! `qokit_statevec::Backend::Auto`, which `qokit-core` routes through
//! [`tn_energy`].
//!
//! ```
//! use qokit_tensornet::{qaoa_amplitude, TnEngine, TnOptions};
//! use qokit_terms::maxcut::maxcut_polynomial;
//! use qokit_terms::Graph;
//!
//! let poly = maxcut_polynomial(&Graph::ring(4, 1.0));
//! let (amp, width) = qaoa_amplitude(&poly, &[0.4], &[0.8], 0, 30).unwrap();
//! assert!(amp.norm_sqr() <= 1.0);
//! assert!(width <= 30);
//!
//! // Plan once, evaluate any angles at the same structure.
//! let engine = TnEngine::new(&poly, 1, TnOptions::default()).unwrap();
//! let planned = engine.amplitude(&[0.4], &[0.8], 0);
//! assert!(planned.approx_eq(amp, 1e-12));
//! ```

//!
//! *Part of the qokit workspace — see the top-level `README.md` for the
//! crate-by-crate architecture table and build/test/bench instructions.*

#![warn(missing_docs)]

pub mod engine;
pub mod network;
pub mod plan;
pub mod slice;
pub mod tensor;

pub use engine::{tn_energy, TnEngine, TnOptions, TnReport, DEFAULT_WIDTH_CAP};
pub use network::{build_qaoa_network, qaoa_amplitude, QaoaNetwork, TensorNetwork, TnError};
pub use plan::{ContractionPlan, PlanStep};
pub use slice::{SlicePlan, SliceStats, DEFAULT_MAX_SLICE_LEGS};
pub use tensor::Tensor;
