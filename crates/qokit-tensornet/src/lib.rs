//! # qokit-tensornet
//!
//! Tensor-network contraction baseline for the QOKit reproduction — the
//! stand-in for cuTensorNet/QTensor in Fig. 3 of *Fast Simulation of
//! High-Depth QAOA Circuits*. Builds the amplitude network
//! `⟨x|QAOA(γ,β)|+⟩` with diagonal cost terms as hyperedge tensors and
//! contracts it greedily; deep LABS circuits drive the contraction width
//! toward `n`, which is the paper's argument for state-vector simulation
//! at high depth.
//!
//! ```
//! use qokit_tensornet::qaoa_amplitude;
//! use qokit_terms::maxcut::maxcut_polynomial;
//! use qokit_terms::Graph;
//!
//! let poly = maxcut_polynomial(&Graph::ring(4, 1.0));
//! let (amp, width) = qaoa_amplitude(&poly, &[0.4], &[0.8], 0, 30).unwrap();
//! assert!(amp.norm_sqr() <= 1.0);
//! assert!(width <= 30);
//! ```

//!
//! *Part of the qokit workspace — see the top-level `README.md` for the
//! crate-by-crate architecture table and build/test/bench instructions.*

#![warn(missing_docs)]

pub mod network;
pub mod tensor;

pub use network::{qaoa_amplitude, QaoaNetwork, TensorNetwork, TnError};
pub use tensor::Tensor;
