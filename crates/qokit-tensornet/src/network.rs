//! Tensor networks for QAOA amplitudes, with greedy contraction.
//!
//! This is the reproduction's stand-in for cuTensorNet/QTensor in Fig. 3.
//! The network computes a single amplitude `⟨x|QAOA(γ,β)|+⟩` (the paper's
//! TN timing protocol: one amplitude per contraction, total time divided
//! by `p`). Diagonal cost terms are attached as hyperedge tensors directly
//! on the qubit wires — the diagonal-gate trick of the paper's Ref. \[23\] —
//! so the phase operator adds no new wire segments; only mixers do.
//!
//! Deep LABS circuits still force the greedy contraction into
//! intermediates of rank ≈ n ("contraction width equal to n"), which is
//! exactly the observation that motivates the paper's state-vector
//! approach. A configurable width cap turns that blow-up into a reported
//! infeasibility instead of an OOM.

use crate::tensor::Tensor;
use qokit_statevec::C64;
use qokit_terms::SpinPolynomial;

/// Errors during network contraction.
#[derive(Clone, Debug, PartialEq)]
pub enum TnError {
    /// Every remaining contraction pair exceeds the width cap.
    WidthExceeded {
        /// Rank of the smallest achievable intermediate.
        rank: usize,
        /// The configured cap.
        cap: usize,
    },
}

impl std::fmt::Display for TnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TnError::WidthExceeded { rank, cap } => {
                write!(f, "contraction width {rank} exceeds cap {cap}")
            }
        }
    }
}

impl std::error::Error for TnError {}

/// A tensor network under construction / contraction.
#[derive(Clone, Debug, Default)]
pub struct TensorNetwork {
    tensors: Vec<Tensor>,
    next_leg: usize,
}

impl TensorNetwork {
    /// An empty network.
    pub fn new() -> Self {
        TensorNetwork::default()
    }

    /// Allocates a fresh leg id.
    pub fn fresh_leg(&mut self) -> usize {
        let l = self.next_leg;
        self.next_leg += 1;
        l
    }

    /// Adds a tensor.
    pub fn add(&mut self, t: Tensor) {
        self.tensors.push(t);
    }

    /// Number of tensors currently in the network.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// `true` when the network holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// The network's *structure*: each tensor's leg list, in insertion
    /// order. This is everything a [`crate::plan::ContractionPlan`] needs —
    /// tensor values play no part in planning.
    pub fn structure(&self) -> Vec<Vec<usize>> {
        self.tensors.iter().map(|t| t.legs.clone()).collect()
    }

    /// A view of the tensors, in insertion order.
    pub fn tensors(&self) -> &[Tensor] {
        &self.tensors
    }

    /// Consumes the network, yielding the tensors in insertion order —
    /// aligned with [`TensorNetwork::structure`] so they can be fed to a
    /// plan built from it.
    pub fn into_tensors(self) -> Vec<Tensor> {
        self.tensors
    }

    /// Greedily contracts the whole network to a scalar: repeatedly picks
    /// the connected tensor pair whose contraction yields the smallest
    /// intermediate rank. `width_cap` bounds the intermediate rank;
    /// exceeding it aborts with [`TnError::WidthExceeded`]. Returns the
    /// scalar and the maximum intermediate rank encountered (the
    /// *contraction width*).
    pub fn contract_greedy(mut self, width_cap: usize) -> Result<(C64, usize), TnError> {
        let mut max_width = 0usize;
        while self.tensors.len() > 1 {
            // Count leg multiplicities to know which legs may be summed.
            let mut leg_count = std::collections::HashMap::<usize, usize>::new();
            for t in &self.tensors {
                for &l in &t.legs {
                    *leg_count.entry(l).or_insert(0) += 1;
                }
            }
            // Find the best pair (smallest resulting rank).
            let mut best: Option<(usize, usize, usize, Vec<usize>)> = None; // (i, j, rank, sum)
            for i in 0..self.tensors.len() {
                for j in i + 1..self.tensors.len() {
                    let (ti, tj) = (&self.tensors[i], &self.tensors[j]);
                    let shared: Vec<usize> = ti
                        .legs
                        .iter()
                        .copied()
                        .filter(|l| tj.legs.contains(l))
                        .collect();
                    if shared.is_empty() && !(ti.legs.is_empty() || tj.legs.is_empty()) {
                        continue; // only contract connected pairs (or absorb scalars)
                    }
                    // Legs summable now: shared by exactly these two tensors.
                    let sum: Vec<usize> = shared
                        .iter()
                        .copied()
                        .filter(|l| leg_count[l] == 2)
                        .collect();
                    let union: std::collections::HashSet<usize> =
                        ti.legs.iter().chain(tj.legs.iter()).copied().collect();
                    let rank = union.len() - sum.len();
                    if best.as_ref().is_none_or(|b| rank < b.2) {
                        best = Some((i, j, rank, sum));
                    }
                }
            }
            let (i, j, rank, sum) = match best {
                Some(b) => b,
                None => {
                    // Disconnected network: multiply any two scalars-to-be
                    // via an outer product of the two smallest tensors.
                    let (i, j) = (0, 1);
                    let rank = self.tensors[i].rank() + self.tensors[j].rank();
                    (i, j, rank, vec![])
                }
            };
            if rank > width_cap {
                return Err(TnError::WidthExceeded {
                    rank,
                    cap: width_cap,
                });
            }
            max_width = max_width.max(rank);
            let tj = self.tensors.swap_remove(j); // j > i, so i stays valid
            let ti = self.tensors.swap_remove(i);
            self.tensors.push(ti.contract(&tj, &sum));
        }
        let scalar = match self.tensors.pop() {
            Some(t) => {
                assert!(
                    t.legs.is_empty(),
                    "network contracted to a non-scalar (open legs remain)"
                );
                t.into_scalar()
            }
            None => C64::ONE,
        };
        Ok((scalar, max_width))
    }
}

/// Builder for QAOA amplitude networks.
pub struct QaoaNetwork {
    net: TensorNetwork,
    /// Current wire leg per qubit.
    wires: Vec<usize>,
}

impl QaoaNetwork {
    /// Starts a network with the `|+⟩^{⊗n}` input layer.
    pub fn plus_state(n: usize) -> Self {
        let mut net = TensorNetwork::new();
        let mut wires = Vec::with_capacity(n);
        let amp = C64::from_re(std::f64::consts::FRAC_1_SQRT_2);
        for _ in 0..n {
            let leg = net.fresh_leg();
            net.add(Tensor::new(vec![leg], vec![amp, amp]));
            wires.push(leg);
        }
        QaoaNetwork { net, wires }
    }

    /// Attaches one phase layer `e^{-iγĈ}`: each cost term becomes a
    /// diagonal hyperedge tensor `T[s_1…s_k] = e^{-iγ·w·(−1)^{parity}}`
    /// sitting on the wires it touches (no new legs). Constant terms
    /// multiply in as scalars.
    pub fn phase_layer(&mut self, poly: &SpinPolynomial, gamma: f64) {
        for t in poly.terms() {
            if t.is_constant() {
                self.net.add(Tensor::scalar(C64::cis(-gamma * t.weight)));
                continue;
            }
            let idx = t.indices();
            let k = idx.len();
            let legs: Vec<usize> = idx.iter().map(|&q| self.wires[q]).collect();
            let data: Vec<C64> = (0..1usize << k)
                .map(|bits| {
                    let parity = (bits.count_ones() & 1) as i32;
                    let sign = 1.0 - 2.0 * parity as f64;
                    C64::cis(-gamma * t.weight * sign)
                })
                .collect();
            self.net.add(Tensor::new(legs, data));
        }
    }

    /// Attaches one transverse-field mixer layer: a dense 2×2 tensor per
    /// qubit, advancing the wire.
    pub fn mixer_layer(&mut self, beta: f64) {
        let (s, c) = beta.sin_cos();
        // e^{-iβX} with index (out, in): row-major legs [out, in].
        let m = [
            C64::from_re(c),
            C64::new(0.0, -s),
            C64::new(0.0, -s),
            C64::from_re(c),
        ];
        for q in 0..self.wires.len() {
            let out = self.net.fresh_leg();
            self.net
                .add(Tensor::new(vec![out, self.wires[q]], m.to_vec()));
            self.wires[q] = out;
        }
    }

    /// Closes the network with `⟨x|` and returns it.
    pub fn close_with_basis_state(mut self, x: u64) -> TensorNetwork {
        for (q, &wire) in self.wires.iter().enumerate() {
            let bit = (x >> q) & 1;
            let data = if bit == 0 {
                vec![C64::ONE, C64::ZERO]
            } else {
                vec![C64::ZERO, C64::ONE]
            };
            self.net.add(Tensor::new(vec![wire], data));
        }
        self.net
    }
}

/// Builds the closed amplitude network for `⟨x|QAOA(γ,β)|+⟩` without
/// contracting it. The leg structure of the result is a pure function of
/// `(poly, p)` — neither the angles nor `x` influence leg ids — which is
/// what lets one [`crate::plan::ContractionPlan`] serve every amplitude of
/// a problem.
pub fn build_qaoa_network(
    poly: &SpinPolynomial,
    gammas: &[f64],
    betas: &[f64],
    x: u64,
) -> TensorNetwork {
    assert_eq!(gammas.len(), betas.len(), "gamma/beta length mismatch");
    let mut b = QaoaNetwork::plus_state(poly.n_vars());
    for (&g, &bt) in gammas.iter().zip(betas.iter()) {
        b.phase_layer(poly, g);
        b.mixer_layer(bt);
    }
    b.close_with_basis_state(x)
}

/// Computes the amplitude `⟨x|QAOA(γ,β)|+⟩` by building and greedily
/// contracting the network. Returns the amplitude and the contraction
/// width reached.
pub fn qaoa_amplitude(
    poly: &SpinPolynomial,
    gammas: &[f64],
    betas: &[f64],
    x: u64,
    width_cap: usize,
) -> Result<(C64, usize), TnError> {
    build_qaoa_network(poly, gammas, betas, x).contract_greedy(width_cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qokit_core::{FurSimulator, QaoaSimulator, SimOptions};
    use qokit_statevec::Backend;
    use qokit_terms::labs::labs_terms;
    use qokit_terms::maxcut::maxcut_polynomial;
    use qokit_terms::Graph;

    fn statevector_amplitude(poly: &SpinPolynomial, g: &[f64], b: &[f64], x: u64) -> C64 {
        let sim = FurSimulator::with_options(
            poly,
            SimOptions {
                exec: Backend::Serial.into(),
                ..SimOptions::default()
            },
        );
        sim.simulate_qaoa(g, b).state().amplitudes()[x as usize]
    }

    #[test]
    fn p0_amplitude_is_uniform() {
        let poly = maxcut_polynomial(&Graph::ring(4, 1.0));
        let (amp, _) = qaoa_amplitude(&poly, &[], &[], 5, 30).unwrap();
        assert!(amp.approx_eq(C64::from_re(0.25), 1e-12));
    }

    #[test]
    fn maxcut_amplitudes_match_statevector() {
        let poly = maxcut_polynomial(&Graph::ring(5, 1.0));
        let (g, b) = (vec![0.4, 0.2], vec![0.7, 0.3]);
        for x in [0u64, 3, 10, 21, 31] {
            let (amp, _) = qaoa_amplitude(&poly, &g, &b, x, 30).unwrap();
            let expect = statevector_amplitude(&poly, &g, &b, x);
            assert!(amp.approx_eq(expect, 1e-10), "x = {x}: {amp} vs {expect}");
        }
    }

    #[test]
    fn labs_amplitudes_match_statevector() {
        let poly = labs_terms(6);
        let (g, b) = (vec![0.15], vec![0.55]);
        for x in [0u64, 7, 42, 63] {
            let (amp, _) = qaoa_amplitude(&poly, &g, &b, x, 30).unwrap();
            let expect = statevector_amplitude(&poly, &g, &b, x);
            assert!(amp.approx_eq(expect, 1e-10), "x = {x}");
        }
    }

    #[test]
    fn weighted_problem_amplitude() {
        let poly = qokit_terms::maxcut::all_to_all_terms(4, 0.3);
        let (g, b) = (vec![0.3], vec![0.9]);
        for x in 0u64..16 {
            let (amp, _) = qaoa_amplitude(&poly, &g, &b, x, 30).unwrap();
            let expect = statevector_amplitude(&poly, &g, &b, x);
            assert!(amp.approx_eq(expect, 1e-10), "x = {x}");
        }
    }

    #[test]
    fn probability_sums_to_one_via_tn() {
        let poly = maxcut_polynomial(&Graph::ring(4, 1.0));
        let (g, b) = (vec![0.5], vec![0.25]);
        let total: f64 = (0u64..16)
            .map(|x| qaoa_amplitude(&poly, &g, &b, x, 30).unwrap().0.norm_sqr())
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn width_cap_aborts_deep_labs() {
        // Deep LABS forces width ≈ n; a tiny cap must trip.
        let poly = labs_terms(8);
        let g = vec![0.1; 4];
        let b = vec![0.2; 4];
        let err = qaoa_amplitude(&poly, &g, &b, 0, 3).unwrap_err();
        assert!(matches!(err, TnError::WidthExceeded { .. }));
    }

    #[test]
    fn contraction_width_grows_with_connectivity() {
        let ring = maxcut_polynomial(&Graph::ring(8, 1.0));
        let (_, w_ring) = qaoa_amplitude(&ring, &[0.1], &[0.2], 0, 40).unwrap();
        let dense = labs_terms(8);
        let (_, w_dense) = qaoa_amplitude(&dense, &[0.1], &[0.2], 0, 40).unwrap();
        assert!(
            w_dense >= w_ring,
            "LABS ({w_dense}) should contract wider than a ring ({w_ring})"
        );
    }

    #[test]
    fn empty_network_contracts_to_one() {
        let (v, w) = TensorNetwork::new().contract_greedy(10).unwrap();
        assert_eq!(v, C64::ONE);
        assert_eq!(w, 0);
    }
}
