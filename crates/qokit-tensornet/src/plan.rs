//! Reusable contraction plans from a line-graph / min-fill ordering.
//!
//! The greedy pair contraction in [`crate::network::TensorNetwork`] decides
//! the order *while* contracting, so every amplitude pays the full planning
//! cost and the order is only locally informed. This module separates the
//! two concerns the way QTensor (and the paper's Ref. \[23\]) do:
//!
//! 1. **Plan** once from the network *structure* — the leg lists alone.
//!    A QAOA amplitude network's structure depends only on the polynomial
//!    and the depth `p`, **not** on `(γ, β)` or on the closing basis state
//!    `x` (those change tensor *values*, never leg ids), so one
//!    [`ContractionPlan`] serves every amplitude of a problem — the
//!    tensor-network mirror of the paper's precompute-amortization
//!    argument.
//! 2. **Execute** many times: replay the recorded pairwise merges on fresh
//!    tensor values.
//!
//! The ordering heuristic works on the **line graph** of the network: legs
//! are vertices, adjacent when they co-occur in a tensor (hyperedge cost
//! tensors make this genuinely a hypergraph projection). Legs are
//! eliminated in min-fill order — the classic treewidth heuristic: pick the
//! leg whose elimination adds the fewest new edges among its neighbors,
//! clique-ify, repeat — and each elimination is decomposed into pairwise
//! [`Tensor::contract`] merges, smallest resulting rank first. Every choice
//! breaks ties deterministically (smaller leg id / lower slot index), so
//! the plan — and therefore the floating-point result — is a pure function
//! of the structure.
//!
//! Legs may be declared **open**: the plan then never sums them and the
//! result tensor keeps them as axes. That is the hook slicing
//! ([`crate::slice`]) builds on.

use crate::tensor::Tensor;
use qokit_statevec::C64;
use std::collections::{BTreeMap, BTreeSet};

/// One recorded pairwise merge: contract arena slots `lhs` and `rhs`
/// (summing `sum_legs`) and append the result as a fresh slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanStep {
    /// First operand's arena slot (becomes `self` in [`Tensor::contract`]).
    pub lhs: usize,
    /// Second operand's arena slot.
    pub rhs: usize,
    /// Legs summed at this merge (shared, last two holders).
    pub sum_legs: Vec<usize>,
}

/// A contraction order planned once from leg structure and replayable on
/// any tensor values with that structure.
#[derive(Clone, Debug)]
pub struct ContractionPlan {
    n_inputs: usize,
    steps: Vec<PlanStep>,
    /// Leg list of each step's result, aligned with `steps`.
    step_legs: Vec<Vec<usize>>,
    /// Legs declared open (never summed), sorted.
    open_legs: Vec<usize>,
    /// Leg order of the final result tensor (a subset/permutation of
    /// `open_legs`; empty for a closed network).
    result_legs: Vec<usize>,
    width: usize,
    sliced_width: usize,
    cost: f64,
    sliced_cost: f64,
}

impl ContractionPlan {
    /// Plans a full contraction to a scalar (no open legs).
    pub fn build(inputs: &[Vec<usize>]) -> ContractionPlan {
        ContractionPlan::build_with_open(inputs, &[])
    }

    /// Plans a contraction that keeps `open` legs unsummed; the executed
    /// result is a tensor over those legs (in [`ContractionPlan::result_legs`]
    /// order). Used by slicing, which projects the open legs away per slice.
    pub fn build_with_open(inputs: &[Vec<usize>], open: &[usize]) -> ContractionPlan {
        let planner = Planner::new(inputs, open);
        let order = planner.min_fill_order();
        planner.run(order)
    }

    /// Plans with a caller-chosen leg elimination order instead of the
    /// min-fill heuristic. Entries that are not summable legs of the
    /// network are ignored; summable legs missing from `order` are
    /// eliminated afterwards in ascending id. Any valid order contracts to
    /// the same scalar (the invariance proptest pins this ≤ 1e-12) — only
    /// the width and cost differ, which is the whole point of planning.
    pub fn build_with_elimination_order(inputs: &[Vec<usize>], order: &[usize]) -> ContractionPlan {
        let planner = Planner::new(inputs, &[]);
        let mut full: Vec<usize> = Vec::new();
        for &l in order {
            if planner.summable(l) && !full.contains(&l) {
                full.push(l);
            }
        }
        let rest: Vec<usize> = planner
            .holders
            .keys()
            .copied()
            .filter(|&l| planner.summable(l) && !full.contains(&l))
            .collect();
        full.extend(rest);
        planner.run(full)
    }

    /// Number of input tensors the plan expects.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// The recorded merge steps.
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// Maximum intermediate rank when executing with open legs kept.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Maximum intermediate rank once the open legs are projected away —
    /// the width each *slice* actually pays.
    pub fn sliced_width(&self) -> usize {
        self.sliced_width
    }

    /// The declared open legs (sorted).
    pub fn open_legs(&self) -> &[usize] {
        &self.open_legs
    }

    /// Leg order of the final result tensor.
    pub fn result_legs(&self) -> &[usize] {
        &self.result_legs
    }

    /// Estimated multiply-add count of one full execution (open legs kept):
    /// `Σ 2^(result rank + summed legs)` over the steps.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Estimated multiply-add count of one *slice* execution (open legs
    /// projected away).
    pub fn sliced_cost(&self) -> f64 {
        self.sliced_cost
    }

    /// Legs that appear in an intermediate of maximal sliced rank and are
    /// still contractible — the slice-leg candidates.
    pub fn widest_legs(&self) -> Vec<usize> {
        let open: BTreeSet<usize> = self.open_legs.iter().copied().collect();
        let mut out = BTreeSet::new();
        for legs in &self.step_legs {
            let sliced_rank = legs.iter().filter(|l| !open.contains(l)).count();
            if sliced_rank == self.sliced_width {
                out.extend(legs.iter().copied().filter(|l| !open.contains(l)));
            }
        }
        out.into_iter().collect()
    }

    /// Replays the plan on `tensors` (whose leg lists must match the
    /// structure the plan was built from, up to projection of the open
    /// legs). Returns the final tensor — rank 0 for a closed network, one
    /// axis per surviving open leg otherwise.
    ///
    /// # Panics
    /// If `tensors.len()` differs from the planned input count, or the leg
    /// structure is incompatible with the recorded merges.
    pub fn execute(&self, tensors: Vec<Tensor>) -> Tensor {
        assert_eq!(
            tensors.len(),
            self.n_inputs,
            "plan built for {} tensors, given {}",
            self.n_inputs,
            tensors.len()
        );
        let mut arena: Vec<Option<Tensor>> = tensors.into_iter().map(Some).collect();
        for step in &self.steps {
            let a = arena[step.lhs].take().expect("slot consumed twice");
            let b = arena[step.rhs].take().expect("slot consumed twice");
            arena.push(Some(a.contract(&b, &step.sum_legs)));
        }
        match arena.pop() {
            Some(Some(t)) => t,
            Some(None) => unreachable!("final arena slot already consumed"),
            None => Tensor::scalar(C64::ONE),
        }
    }
}

/// Internal planning state: simulates the contraction on leg sets only.
struct Planner {
    /// Live leg list per arena slot (`None` once consumed).
    slots: Vec<Option<Vec<usize>>>,
    /// Remaining holder count per leg.
    holders: BTreeMap<usize, usize>,
    open: BTreeSet<usize>,
    steps: Vec<PlanStep>,
    step_legs: Vec<Vec<usize>>,
    width: usize,
    sliced_width: usize,
    cost: f64,
    sliced_cost: f64,
}

impl Planner {
    fn new(inputs: &[Vec<usize>], open: &[usize]) -> Planner {
        let mut holders = BTreeMap::new();
        for legs in inputs {
            for &l in legs {
                *holders.entry(l).or_insert(0usize) += 1;
            }
        }
        Planner {
            slots: inputs.iter().map(|l| Some(l.clone())).collect(),
            holders,
            open: open.iter().copied().collect(),
            steps: Vec::new(),
            step_legs: Vec::new(),
            width: 0,
            sliced_width: 0,
            cost: 0.0,
            sliced_cost: 0.0,
        }
    }

    fn summable(&self, leg: usize) -> bool {
        !self.open.contains(&leg) && self.holders.get(&leg).copied().unwrap_or(0) >= 2
    }

    /// Min-fill elimination order over the line graph of summable legs.
    fn min_fill_order(&self) -> Vec<usize> {
        let mut adj: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        let summable: BTreeSet<usize> = self
            .holders
            .keys()
            .copied()
            .filter(|&l| self.summable(l))
            .collect();
        for l in &summable {
            adj.insert(*l, BTreeSet::new());
        }
        for legs in self.slots.iter().flatten() {
            let here: Vec<usize> = legs
                .iter()
                .copied()
                .filter(|l| summable.contains(l))
                .collect();
            for (i, &a) in here.iter().enumerate() {
                for &b in &here[i + 1..] {
                    adj.get_mut(&a).unwrap().insert(b);
                    adj.get_mut(&b).unwrap().insert(a);
                }
            }
        }
        let mut order = Vec::with_capacity(adj.len());
        let mut remaining: BTreeSet<usize> = adj.keys().copied().collect();
        while !remaining.is_empty() {
            // Pick min (fill, degree, id): fill = neighbor pairs not yet
            // adjacent, i.e. edges elimination would add.
            let mut best: Option<(usize, usize, usize)> = None; // (fill, deg, leg)
            for &l in &remaining {
                let nbrs: Vec<usize> = adj[&l].iter().copied().collect();
                let mut fill = 0usize;
                for (i, &u) in nbrs.iter().enumerate() {
                    for &v in &nbrs[i + 1..] {
                        if !adj[&u].contains(&v) {
                            fill += 1;
                        }
                    }
                }
                let key = (fill, nbrs.len(), l);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            let (_, _, leg) = best.unwrap();
            order.push(leg);
            let nbrs: Vec<usize> = adj[&leg].iter().copied().collect();
            for (i, &u) in nbrs.iter().enumerate() {
                for &v in &nbrs[i + 1..] {
                    adj.get_mut(&u).unwrap().insert(v);
                    adj.get_mut(&v).unwrap().insert(u);
                }
            }
            for &u in &nbrs {
                adj.get_mut(&u).unwrap().remove(&leg);
            }
            adj.remove(&leg);
            remaining.remove(&leg);
        }
        order
    }

    /// Simulates contracting slots `i` and `j`, recording the step.
    fn merge(&mut self, i: usize, j: usize) {
        let a = self.slots[i].take().expect("merge of consumed slot");
        let b = self.slots[j].take().expect("merge of consumed slot");
        let sum: Vec<usize> = a
            .iter()
            .copied()
            .filter(|&l| b.contains(&l) && self.summable(l) && self.holders[&l] == 2)
            .collect();
        // Same output-leg rule as Tensor::contract: self's legs first, then
        // other's new ones, skipping summed legs.
        let mut out: Vec<usize> = Vec::new();
        for &l in a.iter().chain(b.iter()) {
            if !sum.contains(&l) && !out.contains(&l) {
                out.push(l);
            }
        }
        for &l in &sum {
            self.holders.remove(&l);
        }
        // A kept leg shared by both operands loses one holder.
        for &l in &out {
            if a.contains(&l) && b.contains(&l) {
                *self.holders.get_mut(&l).unwrap() -= 1;
            }
        }
        let rank = out.len();
        let open_in = out.iter().filter(|l| self.open.contains(l)).count();
        self.width = self.width.max(rank);
        self.sliced_width = self.sliced_width.max(rank - open_in);
        self.cost += (1u128 << (rank + sum.len()).min(120)) as f64;
        self.sliced_cost += (1u128 << (rank - open_in + sum.len()).min(120)) as f64;
        self.steps.push(PlanStep {
            lhs: i,
            rhs: j,
            sum_legs: sum,
        });
        self.step_legs.push(out.clone());
        self.slots.push(Some(out));
    }

    /// Rank the merge of slots `i`, `j` would produce (open legs counted).
    fn merge_rank(&self, i: usize, j: usize) -> (usize, usize) {
        let a = self.slots[i].as_ref().unwrap();
        let b = self.slots[j].as_ref().unwrap();
        let mut rank = 0usize;
        let mut open_in = 0usize;
        let mut count = |l: usize| {
            rank += 1;
            if self.open.contains(&l) {
                open_in += 1;
            }
        };
        for &l in a {
            let summed = b.contains(&l) && self.summable(l) && self.holders[&l] == 2;
            if !summed {
                count(l);
            }
        }
        for &l in b {
            if !a.contains(&l) {
                count(l);
            }
        }
        (rank - open_in, rank) // sliced rank primary, kept rank secondary
    }

    fn run(mut self, order: Vec<usize>) -> ContractionPlan {
        for leg in order {
            // Opportunistic sums during earlier merges may have retired it.
            while self.holders.get(&leg).copied().unwrap_or(0) >= 2 {
                let held: Vec<usize> = (0..self.slots.len())
                    .filter(|&s| {
                        self.slots[s]
                            .as_ref()
                            .is_some_and(|legs| legs.contains(&leg))
                    })
                    .collect();
                if held.len() < 2 {
                    break;
                }
                // Merge the cheapest pair among the holders.
                let mut best: Option<((usize, usize), (usize, usize))> = None;
                for (x, &i) in held.iter().enumerate() {
                    for &j in &held[x + 1..] {
                        let key = self.merge_rank(i, j);
                        if best.is_none_or(|(k, _)| key < k) {
                            best = Some((key, (i, j)));
                        }
                    }
                }
                let (_, (i, j)) = best.unwrap();
                self.merge(i, j);
            }
        }
        // Disconnected remainders (scalars, components joined only by open
        // legs): fold left in slot order.
        loop {
            let live: Vec<usize> = (0..self.slots.len())
                .filter(|&s| self.slots[s].is_some())
                .collect();
            if live.len() <= 1 {
                break;
            }
            self.merge(live[0], live[1]);
        }
        let result_legs = self
            .slots
            .iter()
            .flatten()
            .next_back()
            .cloned()
            .unwrap_or_default();
        ContractionPlan {
            n_inputs: self.slots.len() - self.steps.len(),
            steps: self.steps,
            step_legs: self.step_legs,
            open_legs: self.open.iter().copied().collect(),
            result_legs,
            width: self.width,
            sliced_width: self.sliced_width,
            cost: self.cost,
            sliced_cost: self.sliced_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::build_qaoa_network;
    use qokit_terms::maxcut::maxcut_polynomial;
    use qokit_terms::Graph;

    fn c(v: f64) -> C64 {
        C64::from_re(v)
    }

    #[test]
    fn plans_a_dot_product() {
        let plan = ContractionPlan::build(&[vec![0], vec![0]]);
        assert_eq!(plan.n_inputs(), 2);
        assert_eq!(plan.width(), 0);
        let a = Tensor::new(vec![0], vec![c(1.0), c(2.0)]);
        let b = Tensor::new(vec![0], vec![c(3.0), c(4.0)]);
        assert_eq!(plan.execute(vec![a, b]).into_scalar(), c(11.0));
    }

    #[test]
    fn plans_a_matrix_chain() {
        // v0 — M01 — M12 — v2: a path graph; min-fill contracts the chain
        // without ever exceeding rank 1.
        let plan = ContractionPlan::build(&[vec![0], vec![0, 1], vec![1, 2], vec![2]]);
        assert!(plan.width() <= 2, "width = {}", plan.width());
        let v0 = Tensor::new(vec![0], vec![c(1.0), c(2.0)]);
        let m01 = Tensor::new(vec![0, 1], vec![c(1.0), c(0.0), c(0.0), c(1.0)]);
        let m12 = Tensor::new(vec![1, 2], vec![c(2.0), c(0.0), c(0.0), c(2.0)]);
        let v2 = Tensor::new(vec![2], vec![c(3.0), c(5.0)]);
        let got = plan.execute(vec![v0, m01, m12, v2]).into_scalar();
        assert!(got.approx_eq(c(1.0 * 2.0 * 3.0 + 2.0 * 2.0 * 5.0), 1e-12));
    }

    #[test]
    fn hyperedge_leg_sums_only_at_last_holder() {
        // Three tensors share leg 0 (hyperedge): Σ_s a[s]·b[s]·d[s].
        let plan = ContractionPlan::build(&[vec![0], vec![0], vec![0]]);
        let a = Tensor::new(vec![0], vec![c(1.0), c(2.0)]);
        let b = Tensor::new(vec![0], vec![c(3.0), c(4.0)]);
        let d = Tensor::new(vec![0], vec![c(5.0), c(6.0)]);
        let got = plan.execute(vec![a, b, d]).into_scalar();
        assert!(got.approx_eq(c(15.0 + 48.0), 1e-12));
    }

    #[test]
    fn disconnected_scalars_multiply() {
        let plan = ContractionPlan::build(&[vec![], vec![], vec![0], vec![0]]);
        let s1 = Tensor::scalar(c(2.0));
        let s2 = Tensor::scalar(c(3.0));
        let a = Tensor::new(vec![0], vec![c(1.0), c(1.0)]);
        let b = Tensor::new(vec![0], vec![c(4.0), c(5.0)]);
        let got = plan.execute(vec![s1, s2, a, b]).into_scalar();
        assert!(got.approx_eq(c(2.0 * 3.0 * 9.0), 1e-12));
    }

    #[test]
    fn empty_plan_is_one() {
        let plan = ContractionPlan::build(&[]);
        assert_eq!(plan.execute(vec![]).into_scalar(), C64::ONE);
    }

    #[test]
    fn open_legs_survive_to_the_result() {
        let plan = ContractionPlan::build_with_open(&[vec![0, 1], vec![1]], &[0]);
        assert_eq!(plan.result_legs(), &[0]);
        assert!(plan.sliced_width() <= plan.width());
        let m = Tensor::new(vec![0, 1], vec![c(1.0), c(2.0), c(3.0), c(4.0)]);
        let v = Tensor::new(vec![1], vec![c(5.0), c(6.0)]);
        let out = plan.execute(vec![m, v]);
        assert_eq!(out.legs, vec![0]);
        assert_eq!(out.data, vec![c(17.0), c(39.0)]);
    }

    #[test]
    fn plan_matches_greedy_on_qaoa_network() {
        let poly = maxcut_polynomial(&Graph::ring(6, 1.0));
        let net = build_qaoa_network(&poly, &[0.4, 0.1], &[0.7, 0.3], 5);
        let plan = ContractionPlan::build(&net.structure());
        let (greedy, w_greedy) = net.clone().contract_greedy(40).unwrap();
        let planned = plan.execute(net.into_tensors()).into_scalar();
        assert!(
            planned.approx_eq(greedy, 1e-12),
            "planned {planned} vs greedy {greedy}"
        );
        assert!(
            plan.width() <= w_greedy + 2,
            "min-fill width {} far above greedy {w_greedy}",
            plan.width()
        );
    }

    #[test]
    fn plan_width_on_ring_stays_small() {
        // A p=1 ring has bounded treewidth; the planner must not blow up
        // to n.
        let poly = maxcut_polynomial(&Graph::ring(12, 1.0));
        let net = build_qaoa_network(&poly, &[0.3], &[0.2], 0);
        let plan = ContractionPlan::build(&net.structure());
        assert!(plan.width() <= 6, "ring width {}", plan.width());
    }
}
