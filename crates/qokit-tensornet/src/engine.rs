//! The TN execution engine: plan once per `(polynomial, p)`, evaluate many.
//!
//! [`TnEngine`] is the tensor-network counterpart of the paper's
//! cost-vector precompute: the expensive, angle-independent part (the
//! contraction plan, plus slice-leg selection when the plan exceeds the
//! width cap) is built once from the network *structure*, and every
//! amplitude `⟨x|QAOA(γ,β)|+⟩` — for any angles and any basis state —
//! replays it on fresh tensor values. Energies come from amplitude sums,
//! `⟨C⟩ = Σ_x |⟨x|ψ⟩|² · C(x)`, fanned out over `x` as pool tasks and
//! accumulated in basis-state order, so they are deterministic at every
//! pool width. That is practical exactly where Fig. 3 of the paper puts
//! tensor networks: small cones / low depth / sparse connectivity — the
//! regime `qokit-core`'s light-cone evaluator and sweep runner route here
//! via `Backend::TensorNet` / `Backend::Auto`.

use crate::network::{build_qaoa_network, TnError};
use crate::slice::{SlicePlan, SliceStats, DEFAULT_MAX_SLICE_LEGS};
use qokit_statevec::{Backend, ExecPolicy, C64};
use qokit_terms::SpinPolynomial;

/// Default width cap: 2^28 complex entries (4 GiB) is the largest
/// intermediate a contraction may allocate before slicing kicks in.
pub const DEFAULT_WIDTH_CAP: usize = 28;

/// Qubit-count ceiling for [`TnEngine::energy`] — energies enumerate all
/// `2^n` basis states, so they are meant for small `n` and light-cone
/// cones, not full problem registers.
pub const TN_ENERGY_MAX_QUBITS: usize = 22;

/// Knobs for [`TnEngine`].
#[derive(Clone, Debug)]
pub struct TnOptions {
    /// Maximum intermediate rank a contraction may allocate; wider plans
    /// are sliced.
    pub width_cap: usize,
    /// Slice legs tried before [`TnError::WidthExceeded`] is reported.
    pub max_slice_legs: usize,
    /// Executor for the slice and basis-state fan-outs.
    /// [`Backend::Serial`] keeps everything in the calling thread; any
    /// other backend uses the (possibly [`ExecPolicy::with_threads`]-sized)
    /// pool. Results are identical either way.
    pub exec: ExecPolicy,
}

impl Default for TnOptions {
    fn default() -> Self {
        TnOptions {
            width_cap: DEFAULT_WIDTH_CAP,
            max_slice_legs: DEFAULT_MAX_SLICE_LEGS,
            exec: ExecPolicy::serial(),
        }
    }
}

/// What the planner decided, for logging and the `abl_tn` ablation.
#[derive(Clone, Debug, PartialEq)]
pub struct TnReport {
    /// Qubits in the problem.
    pub n: usize,
    /// QAOA depth the plan was built for.
    pub p: usize,
    /// Tensors in the amplitude network.
    pub n_tensors: usize,
    /// Slicing outcome (slice count 1 when the plan fit the cap).
    pub slicing: SliceStats,
}

/// A planned tensor-network evaluator for one `(polynomial, p)` pair.
#[derive(Clone, Debug)]
pub struct TnEngine {
    poly: SpinPolynomial,
    p: usize,
    opts: TnOptions,
    slice_plan: SlicePlan,
    n_tensors: usize,
}

impl TnEngine {
    /// Plans the amplitude network of `poly` at depth `p`. Fails with
    /// [`TnError::WidthExceeded`] only when even
    /// [`TnOptions::max_slice_legs`] slice legs leave the contraction wider
    /// than [`TnOptions::width_cap`].
    pub fn new(poly: &SpinPolynomial, p: usize, opts: TnOptions) -> Result<TnEngine, TnError> {
        let zeros = vec![0.0; p];
        let probe = build_qaoa_network(poly, &zeros, &zeros, 0);
        let structure = probe.structure();
        let slice_plan = SlicePlan::choose(&structure, opts.width_cap, opts.max_slice_legs)?;
        Ok(TnEngine {
            poly: poly.clone(),
            p,
            opts,
            n_tensors: structure.len(),
            slice_plan,
        })
    }

    /// The depth the plan serves.
    pub fn depth(&self) -> usize {
        self.p
    }

    /// The problem polynomial.
    pub fn polynomial(&self) -> &SpinPolynomial {
        &self.poly
    }

    /// The slice plan in force.
    pub fn slice_plan(&self) -> &SlicePlan {
        &self.slice_plan
    }

    /// Planner report: widths, slice count, estimated slicing overhead.
    pub fn report(&self) -> TnReport {
        TnReport {
            n: self.poly.n_vars(),
            p: self.p,
            n_tensors: self.n_tensors,
            slicing: self.slice_plan.stats(),
        }
    }

    fn tensors_for(&self, gammas: &[f64], betas: &[f64], x: u64) -> Vec<crate::tensor::Tensor> {
        assert_eq!(gammas.len(), self.p, "engine planned for depth {}", self.p);
        assert_eq!(betas.len(), self.p, "engine planned for depth {}", self.p);
        let net = build_qaoa_network(&self.poly, gammas, betas, x);
        debug_assert_eq!(net.len(), self.n_tensors, "network structure drifted");
        net.into_tensors()
    }

    /// The amplitude `⟨x|QAOA(γ,β)|+⟩`, replaying the cached plan (sliced
    /// when the planner had to slice).
    ///
    /// # Panics
    /// If `gammas`/`betas` do not have length `p`.
    pub fn amplitude(&self, gammas: &[f64], betas: &[f64], x: u64) -> C64 {
        let tensors = self.tensors_for(gammas, betas, x);
        self.slice_plan.execute(&tensors, &self.opts.exec)
    }

    /// The unsliced serial reference for [`TnEngine::amplitude`]: one pass
    /// with the slice legs kept open, entries summed in flat order. Equal
    /// to `amplitude` bit for bit — the anchor of the differential suite.
    pub fn amplitude_unsliced(&self, gammas: &[f64], betas: &[f64], x: u64) -> C64 {
        let tensors = self.tensors_for(gammas, betas, x);
        self.slice_plan.execute_unsliced(&tensors)
    }

    /// `⟨ψ(γ,β)| O |ψ(γ,β)⟩` for a diagonal observable `O` given as a spin
    /// polynomial over the same variables: `Σ_x |⟨x|ψ⟩|² · O(x)`. Basis
    /// states fan out as pool tasks keyed by `x` (slices stay serial inside
    /// each task) and partial sums accumulate in `x` order, so any pool
    /// width produces identical bits.
    ///
    /// # Panics
    /// If the register exceeds [`TN_ENERGY_MAX_QUBITS`] or the angle
    /// vectors do not have length `p`.
    pub fn expectation(&self, gammas: &[f64], betas: &[f64], observable: &SpinPolynomial) -> f64 {
        let n = self.poly.n_vars();
        assert!(
            n <= TN_ENERGY_MAX_QUBITS,
            "TN energies enumerate 2^n amplitudes; n = {n} exceeds {TN_ENERGY_MAX_QUBITS}"
        );
        assert_eq!(gammas.len(), self.p, "engine planned for depth {}", self.p);
        assert_eq!(betas.len(), self.p, "engine planned for depth {}", self.p);
        let states = 1usize << n;
        let serial = ExecPolicy {
            backend: Backend::Serial,
            ..self.opts.exec
        };
        let one = |x: usize| {
            let tensors = self.tensors_for(gammas, betas, x as u64);
            let amp = self.slice_plan.execute(&tensors, &serial);
            amp.norm_sqr() * observable.evaluate_bits(x as u64)
        };
        let parts: Vec<f64> = if matches!(self.opts.exec.backend, Backend::Serial) {
            (0..states).map(one).collect()
        } else {
            self.opts
                .exec
                .install(|| rayon::strided_lanes(states, states, 0, one))
        };
        parts.into_iter().sum()
    }

    /// The QAOA energy `⟨ψ(γ,β)| Ĉ |ψ(γ,β)⟩` of the engine's own
    /// polynomial, via amplitude sums. See [`TnEngine::expectation`].
    pub fn energy(&self, gammas: &[f64], betas: &[f64]) -> f64 {
        self.expectation(gammas, betas, &self.poly)
    }
}

/// One-shot QAOA energy through the tensor-network backend: plans the
/// network for `(poly, gammas.len())`, then sums `|⟨x|ψ⟩|² · C(x)` over
/// the basis. The entry point `SweepRunner` and `LightConeEvaluator` route
/// through when the crossover picks `Backend::TensorNet`.
pub fn tn_energy(
    poly: &SpinPolynomial,
    gammas: &[f64],
    betas: &[f64],
    opts: TnOptions,
) -> Result<f64, TnError> {
    assert_eq!(gammas.len(), betas.len(), "gamma/beta length mismatch");
    let engine = TnEngine::new(poly, gammas.len(), opts)?;
    Ok(engine.energy(gammas, betas))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::qaoa_amplitude;
    use qokit_terms::labs::labs_terms;
    use qokit_terms::maxcut::maxcut_polynomial;
    use qokit_terms::Graph;

    #[test]
    fn planned_amplitudes_match_greedy() {
        let poly = maxcut_polynomial(&Graph::ring(6, 1.0));
        let engine = TnEngine::new(&poly, 2, TnOptions::default()).unwrap();
        let (g, b) = (vec![0.4, 0.2], vec![0.7, 0.3]);
        for x in [0u64, 5, 17, 63] {
            let planned = engine.amplitude(&g, &b, x);
            let (greedy, _) = qaoa_amplitude(&poly, &g, &b, x, 40).unwrap();
            assert!(planned.approx_eq(greedy, 1e-12), "x = {x}");
        }
    }

    #[test]
    fn one_plan_serves_many_angles() {
        let poly = labs_terms(5);
        let engine = TnEngine::new(&poly, 1, TnOptions::default()).unwrap();
        for (g, b) in [(0.1, 0.9), (0.5, 0.5), (1.2, 0.05)] {
            let planned = engine.amplitude(&[g], &[b], 3);
            let (greedy, _) = qaoa_amplitude(&poly, &[g], &[b], 3, 40).unwrap();
            assert!(planned.approx_eq(greedy, 1e-12), "γ = {g}, β = {b}");
        }
    }

    #[test]
    fn energy_matches_brute_force_extremes() {
        // Energies are convex combinations of the diagonal, so they sit
        // inside the polynomial's range.
        let poly = maxcut_polynomial(&Graph::ring(6, 1.0));
        let e = tn_energy(&poly, &[0.35], &[0.6], TnOptions::default()).unwrap();
        let (min, max) = (0u64..64)
            .map(|x| poly.evaluate_bits(x))
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
                (lo.min(v), hi.max(v))
            });
        assert!(e >= min - 1e-9 && e <= max + 1e-9, "e = {e}");
    }

    #[test]
    fn energy_is_pool_invariant() {
        let poly = maxcut_polynomial(&Graph::ring(5, 1.0));
        let serial = tn_energy(&poly, &[0.3], &[0.2], TnOptions::default()).unwrap();
        for workers in [1usize, 2, 4] {
            let opts = TnOptions {
                exec: ExecPolicy::rayon().with_threads(workers),
                ..TnOptions::default()
            };
            let pooled = tn_energy(&poly, &[0.3], &[0.2], opts).unwrap();
            assert_eq!(serial.to_bits(), pooled.to_bits(), "workers = {workers}");
        }
    }

    #[test]
    fn report_counts_slices() {
        let poly = labs_terms(6);
        let wide = TnEngine::new(&poly, 2, TnOptions::default()).unwrap();
        assert_eq!(wide.report().slicing.n_slices, 1);
        let cap = wide.slice_plan().plan().width() - 1;
        let tight = TnEngine::new(
            &poly,
            2,
            TnOptions {
                width_cap: cap,
                ..TnOptions::default()
            },
        )
        .unwrap();
        let report = tight.report();
        assert!(report.slicing.n_slices >= 2);
        assert!(report.slicing.width <= cap);
        assert!(report.slicing.overhead >= 1.0);
    }
}
