//! Dense tensors with binary (dimension-2) legs and pairwise contraction.
//!
//! Everything a QAOA circuit produces has qubit-sized indices, so legs are
//! always dimension 2 and a rank-`r` tensor holds `2^r` complex entries.
//! Legs are global ids; the same id appearing in two tensors denotes a
//! shared (contractible) index. Diagonal cost-term tensors are *hyperedges*
//! (a leg id may appear in more than two tensors), so contraction keeps a
//! shared leg alive until its last holder is merged.

use qokit_statevec::C64;

/// A dense tensor over dimension-2 legs, row-major with `legs[0]` slowest.
#[derive(Clone, Debug)]
pub struct Tensor {
    /// Global leg ids, one per axis.
    pub legs: Vec<usize>,
    /// `2^legs.len()` entries, `legs[0]` the most significant bit of the
    /// flat index.
    pub data: Vec<C64>,
}

impl Tensor {
    /// Builds a tensor, checking the data length.
    ///
    /// # Panics
    /// If `data.len() != 2^legs.len()` or legs repeat.
    pub fn new(legs: Vec<usize>, data: Vec<C64>) -> Self {
        assert_eq!(data.len(), 1usize << legs.len(), "data/rank mismatch");
        let mut sorted = legs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), legs.len(), "repeated leg id within a tensor");
        Tensor { legs, data }
    }

    /// Scalar (rank-0) tensor.
    pub fn scalar(v: C64) -> Self {
        Tensor {
            legs: vec![],
            data: vec![v],
        }
    }

    /// Tensor rank (number of legs).
    pub fn rank(&self) -> usize {
        self.legs.len()
    }

    /// The scalar value of a rank-0 tensor.
    ///
    /// # Panics
    /// If the tensor still has legs.
    pub fn into_scalar(self) -> C64 {
        assert!(self.legs.is_empty(), "tensor still has open legs");
        self.data[0]
    }

    /// Contracts `self` with `other`, summing over every leg in `sum_legs`
    /// (must be shared by both) and keeping all other legs (shared-but-kept
    /// legs appear once in the output — the hyperedge case).
    pub fn contract(&self, other: &Tensor, sum_legs: &[usize]) -> Tensor {
        for l in sum_legs {
            assert!(
                self.legs.contains(l) && other.legs.contains(l),
                "summed leg {l} must be shared"
            );
        }
        // Output legs: union minus summed, self's legs first.
        let mut out_legs: Vec<usize> = Vec::new();
        for &l in self.legs.iter().chain(other.legs.iter()) {
            if !sum_legs.contains(&l) && !out_legs.contains(&l) {
                out_legs.push(l);
            }
        }
        let out_rank = out_legs.len();
        let sum_rank = sum_legs.len();
        // Enumeration space: output bits (high) then summed bits (low).
        let bit_of = |leg: usize, out_legs: &[usize]| -> usize {
            // Position of `leg` in the enumeration integer.
            if let Some(i) = out_legs.iter().position(|&x| x == leg) {
                sum_rank + (out_rank - 1 - i)
            } else {
                let j = sum_legs.iter().position(|&x| x == leg).unwrap();
                sum_rank - 1 - j
            }
        };
        // Per-tensor strides: flat index = Σ bit(enum, pos(leg)) << axis.
        let strides = |legs: &[usize]| -> Vec<(usize, usize)> {
            legs.iter()
                .enumerate()
                .map(|(axis, &l)| {
                    let shift = legs.len() - 1 - axis; // row-major, legs[0] slowest
                    (bit_of(l, &out_legs), shift)
                })
                .collect()
        };
        let sa = strides(&self.legs);
        let sb = strides(&other.legs);
        let flat = |enumv: usize, s: &[(usize, usize)]| -> usize {
            s.iter().fold(0usize, |acc, &(src, dst)| {
                acc | (((enumv >> src) & 1) << dst)
            })
        };
        let mut out = vec![C64::ZERO; 1usize << out_rank];
        for (o, out_o) in out.iter_mut().enumerate() {
            let mut acc = C64::ZERO;
            for s in 0..1usize << sum_rank {
                let e = (o << sum_rank) | s;
                acc += self.data[flat(e, &sa)] * other.data[flat(e, &sb)];
            }
            *out_o = acc;
        }
        Tensor {
            legs: out_legs,
            data: out,
        }
    }

    /// Fixes `leg` to `bit` (0 or 1), removing that axis: the slicing
    /// projection. The surviving entries are copied without any arithmetic,
    /// so a contraction of projected tensors performs *bitwise identical*
    /// floating-point operations to the corresponding sub-problem of the
    /// unprojected contraction — the property the sliced-vs-unsliced
    /// bit-equality tests pin down.
    ///
    /// # Panics
    /// If `leg` is not held by this tensor or `bit > 1`.
    pub fn project(&self, leg: usize, bit: usize) -> Tensor {
        assert!(bit <= 1, "projection bit must be 0 or 1");
        let axis = self
            .legs
            .iter()
            .position(|&l| l == leg)
            .expect("projected leg must be held by the tensor");
        let rank = self.rank();
        let shift = rank - 1 - axis; // row-major, legs[0] slowest
        let low_mask = (1usize << shift) - 1;
        let legs: Vec<usize> = self.legs.iter().copied().filter(|&l| l != leg).collect();
        let data: Vec<C64> = (0..1usize << (rank - 1))
            .map(|o| {
                let hi = o >> shift;
                let lo = o & low_mask;
                self.data[(hi << (shift + 1)) | (bit << shift) | lo]
            })
            .collect();
        Tensor { legs, data }
    }

    /// Memory footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<C64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: f64) -> C64 {
        C64::from_re(v)
    }

    #[test]
    fn vector_dot_product() {
        let a = Tensor::new(vec![0], vec![c(1.0), c(2.0)]);
        let b = Tensor::new(vec![0], vec![c(3.0), c(4.0)]);
        let s = a.contract(&b, &[0]);
        assert_eq!(s.into_scalar(), c(11.0));
    }

    #[test]
    fn matrix_vector_product() {
        // M[i][j] on legs (i=0, j=1), v[j] on leg 1.
        let m = Tensor::new(vec![0, 1], vec![c(1.0), c(2.0), c(3.0), c(4.0)]);
        let v = Tensor::new(vec![1], vec![c(5.0), c(6.0)]);
        let r = m.contract(&v, &[1]);
        assert_eq!(r.legs, vec![0]);
        assert_eq!(r.data, vec![c(17.0), c(39.0)]);
    }

    #[test]
    fn matrix_matrix_product() {
        // A on (i, k), B on (k, j): C = A·B on (i, j).
        let a = Tensor::new(vec![0, 1], vec![c(1.0), c(2.0), c(3.0), c(4.0)]);
        let b = Tensor::new(vec![1, 2], vec![c(5.0), c(6.0), c(7.0), c(8.0)]);
        let r = a.contract(&b, &[1]);
        assert_eq!(r.legs, vec![0, 2]);
        assert_eq!(r.data, vec![c(19.0), c(22.0), c(43.0), c(50.0)]);
    }

    #[test]
    fn outer_product_when_nothing_summed() {
        let a = Tensor::new(vec![0], vec![c(1.0), c(2.0)]);
        let b = Tensor::new(vec![1], vec![c(3.0), c(4.0)]);
        let r = a.contract(&b, &[]);
        assert_eq!(r.legs, vec![0, 1]);
        assert_eq!(r.data, vec![c(3.0), c(4.0), c(6.0), c(8.0)]);
    }

    #[test]
    fn hyperedge_leg_kept_when_not_summed() {
        // Two tensors share leg 0 but a third still needs it: contract
        // without summing — the output keeps leg 0 once, values multiply
        // elementwise along it.
        let a = Tensor::new(vec![0], vec![c(2.0), c(5.0)]);
        let b = Tensor::new(vec![0], vec![c(7.0), c(11.0)]);
        let r = a.contract(&b, &[]);
        assert_eq!(r.legs, vec![0]);
        assert_eq!(r.data, vec![c(14.0), c(55.0)]);
    }

    #[test]
    fn three_tensor_chain_associativity() {
        // (A·B)·v must equal A·(B·v) on the open leg 0.
        let a = Tensor::new(vec![0, 1], vec![c(1.0), c(0.0), c(2.0), c(1.0)]);
        let b = Tensor::new(vec![1, 2], vec![c(0.5), c(1.5), c(2.5), c(3.5)]);
        let v = Tensor::new(vec![2], vec![c(1.0), c(-1.0)]);
        let left = a.contract(&b, &[1]).contract(&v, &[2]);
        let right = a.contract(&b.contract(&v, &[2]), &[1]);
        assert_eq!(left.legs, vec![0]);
        assert_eq!(right.legs, vec![0]);
        for (x, y) in left.data.iter().zip(right.data.iter()) {
            assert!(x.approx_eq(*y, 1e-12));
        }
        // Hand-computed values: A·B = [[0.5,1.5],[3.5,6.5]], ·(1,−1) = (−1,−3).
        assert!(left.data[0].approx_eq(c(-1.0), 1e-12));
        assert!(left.data[1].approx_eq(c(-3.0), 1e-12));
    }

    #[test]
    #[should_panic(expected = "must be shared")]
    fn rejects_summing_unshared_leg() {
        let a = Tensor::new(vec![0], vec![c(1.0), c(2.0)]);
        let b = Tensor::new(vec![1], vec![c(3.0), c(4.0)]);
        let _ = a.contract(&b, &[0]);
    }

    #[test]
    #[should_panic(expected = "repeated leg")]
    fn rejects_repeated_legs() {
        let _ = Tensor::new(vec![0, 0], vec![c(0.0); 4]);
    }

    #[test]
    fn project_selects_the_right_slab() {
        // M on legs (0, 1): rows indexed by leg 0 (slowest).
        let m = Tensor::new(vec![0, 1], vec![c(1.0), c(2.0), c(3.0), c(4.0)]);
        let row0 = m.project(0, 0);
        assert_eq!(row0.legs, vec![1]);
        assert_eq!(row0.data, vec![c(1.0), c(2.0)]);
        let row1 = m.project(0, 1);
        assert_eq!(row1.data, vec![c(3.0), c(4.0)]);
        let col1 = m.project(1, 1);
        assert_eq!(col1.legs, vec![0]);
        assert_eq!(col1.data, vec![c(2.0), c(4.0)]);
    }

    #[test]
    fn projection_commutes_with_contraction() {
        // Contracting then indexing an open leg must equal projecting first.
        let a = Tensor::new(vec![0, 1], vec![c(1.5), c(-2.0), c(0.5), c(3.0)]);
        let b = Tensor::new(vec![1, 2], vec![c(2.0), c(1.0), c(-1.0), c(4.0)]);
        let full = a.contract(&b, &[1]); // legs [0, 2]
        for bit in 0..2usize {
            let sliced = a.project(0, bit).contract(&b, &[1]); // legs [2]
            let reference = full.project(0, bit);
            assert_eq!(sliced.legs, reference.legs);
            // Bitwise equality, not approx: the op sequences are identical.
            for (x, y) in sliced.data.iter().zip(reference.data.iter()) {
                assert_eq!(x.re.to_bits(), y.re.to_bits());
                assert_eq!(x.im.to_bits(), y.im.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be held")]
    fn project_rejects_absent_leg() {
        let a = Tensor::new(vec![0], vec![c(1.0), c(2.0)]);
        let _ = a.project(3, 0);
    }
}
