//! Slicing: graceful degradation when the best plan exceeds the width cap.
//!
//! Following *Tensor Network Quantum Simulator With Step-Dependent
//! Parallelization*, a contraction that would need an intermediate of rank
//! `w > width_cap` is **sliced**: pick `k` legs, fix each to a concrete
//! bit value, contract the `2^k` projected sub-networks independently and
//! sum. Each slice pays only `w - k'` width (for the `k'` slice legs alive
//! in the widest intermediate), at the price of redundant work across
//! slices — the classic memory-for-FLOPs trade.
//!
//! Slices are embarrassingly parallel, so they fan out as pool tasks
//! (`rayon::strided_lanes`, keyed by slice index) and are accumulated
//! **sequentially in slice order** — results are bit-identical at any pool
//! width. Stronger still, slicing itself is exact at the bit level:
//! [`crate::tensor::Tensor::project`] performs no arithmetic, so the
//! sliced sum equals entry-by-entry summation of the *unsliced* result
//! tensor with the slice legs kept open ([`SlicePlan::execute_unsliced`]) —
//! the equality the differential suite pins bit-for-bit.

use crate::network::TnError;
use crate::plan::ContractionPlan;
use crate::tensor::Tensor;
use qokit_statevec::{Backend, ExecPolicy, C64};

/// Upper bound on slice legs tried before giving up with
/// [`TnError::WidthExceeded`] (2^8 = 256 slices).
pub const DEFAULT_MAX_SLICE_LEGS: usize = 8;

/// A contraction plan plus the slice legs chosen to respect a width cap.
#[derive(Clone, Debug)]
pub struct SlicePlan {
    plan: ContractionPlan,
    /// Slice legs ordered as in the plan's result tensor (slowest first),
    /// so slice index bits align with the unsliced result's flat order.
    slice_legs: Vec<usize>,
    unsliced_width: usize,
    unsliced_cost: f64,
}

/// What slicing cost: reported alongside every planned contraction.
#[derive(Clone, Debug, PartialEq)]
pub struct SliceStats {
    /// Number of independent slices contracted (1 = no slicing).
    pub n_slices: usize,
    /// The legs sliced over.
    pub slice_legs: Vec<usize>,
    /// Width each slice pays.
    pub width: usize,
    /// Width the unsliced plan would have paid.
    pub unsliced_width: usize,
    /// Estimated FLOP overhead of slicing: total sliced work divided by
    /// unsliced work (1.0 = free).
    pub overhead: f64,
}

impl SlicePlan {
    /// Plans a contraction of `inputs` under `width_cap`, slicing legs
    /// (greedily, the leg that shrinks the planned width most first) until
    /// the per-slice width fits. Fails with [`TnError::WidthExceeded`] only
    /// when `max_slice_legs` slice legs still leave the plan too wide.
    pub fn choose(
        inputs: &[Vec<usize>],
        width_cap: usize,
        max_slice_legs: usize,
    ) -> Result<SlicePlan, TnError> {
        let base = ContractionPlan::build(inputs);
        let unsliced_width = base.width();
        let unsliced_cost = base.cost();
        if unsliced_width <= width_cap {
            return Ok(SlicePlan {
                plan: base,
                slice_legs: Vec::new(),
                unsliced_width,
                unsliced_cost,
            });
        }
        let mut open: Vec<usize> = Vec::new();
        let mut plan = base;
        while plan.sliced_width() > width_cap && open.len() < max_slice_legs {
            let mut best: Option<((usize, f64), usize, ContractionPlan)> = None;
            for cand in plan.widest_legs() {
                let mut trial_open = open.clone();
                trial_open.push(cand);
                let trial = ContractionPlan::build_with_open(inputs, &trial_open);
                let key = (trial.sliced_width(), trial.sliced_cost());
                let better = match &best {
                    None => true,
                    Some((bk, _, _)) => key < *bk,
                };
                if better {
                    best = Some((key, cand, trial));
                }
            }
            match best {
                Some((_, cand, trial)) => {
                    open.push(cand);
                    plan = trial;
                }
                None => break, // no summable candidate left
            }
        }
        if plan.sliced_width() > width_cap {
            return Err(TnError::WidthExceeded {
                rank: plan.sliced_width(),
                cap: width_cap,
            });
        }
        // Order slice legs by their position in the result tensor so slice
        // index `s` enumerates assignments in the unsliced result's flat
        // (row-major) order.
        let slice_legs = plan.result_legs().to_vec();
        debug_assert_eq!(slice_legs.len(), open.len());
        Ok(SlicePlan {
            plan,
            slice_legs,
            unsliced_width,
            unsliced_cost,
        })
    }

    /// The underlying plan.
    pub fn plan(&self) -> &ContractionPlan {
        &self.plan
    }

    /// The slice legs, slowest (most significant slice-index bit) first.
    pub fn slice_legs(&self) -> &[usize] {
        &self.slice_legs
    }

    /// Number of slices one execution contracts.
    pub fn n_slices(&self) -> usize {
        1usize << self.slice_legs.len()
    }

    /// Width each slice pays.
    pub fn width(&self) -> usize {
        self.plan.sliced_width()
    }

    /// The slicing cost report.
    pub fn stats(&self) -> SliceStats {
        let overhead = if self.slice_legs.is_empty() {
            1.0
        } else {
            (self.n_slices() as f64) * self.plan.sliced_cost() / self.unsliced_cost
        };
        SliceStats {
            n_slices: self.n_slices(),
            slice_legs: self.slice_legs.clone(),
            width: self.plan.sliced_width(),
            unsliced_width: self.unsliced_width,
            overhead,
        }
    }

    /// Projects `tensors` onto slice assignment `s` (bit `j` of `s`, from
    /// the top, fixes `slice_legs[j]`).
    fn project_slice(&self, tensors: &[Tensor], s: usize) -> Vec<Tensor> {
        let k = self.slice_legs.len();
        tensors
            .iter()
            .map(|t| {
                let mut out: Option<Tensor> = None;
                for (j, &leg) in self.slice_legs.iter().enumerate() {
                    if t.legs.contains(&leg) {
                        let bit = (s >> (k - 1 - j)) & 1;
                        out = Some(match out {
                            Some(p) => p.project(leg, bit),
                            None => t.project(leg, bit),
                        });
                    }
                }
                out.unwrap_or_else(|| t.clone())
            })
            .collect()
    }

    /// Contracts `tensors` slice by slice, fanning the slices out on the
    /// pool unless `exec` is [`Backend::Serial`], and summing the partial
    /// scalars **in slice order** — the result is bit-identical for every
    /// pool width.
    pub fn execute(&self, tensors: &[Tensor], exec: &ExecPolicy) -> C64 {
        if self.slice_legs.is_empty() {
            return self.plan.execute(tensors.to_vec()).into_scalar();
        }
        let n = self.n_slices();
        let one = |s: usize| self.project_slice(tensors, s);
        let parts: Vec<C64> = if matches!(exec.backend, Backend::Serial) {
            (0..n)
                .map(|s| self.plan.execute(one(s)).into_scalar())
                .collect()
        } else {
            exec.install(|| {
                rayon::strided_lanes(n, n, 0, |s| self.plan.execute(one(s)).into_scalar())
            })
        };
        parts.into_iter().fold(C64::ZERO, |acc, v| acc + v)
    }

    /// The unsliced reference: one serial execution keeping the slice legs
    /// open, then summing the result tensor's entries in flat order. By the
    /// projection-exactness argument ([`Tensor::project`]) this equals
    /// [`SlicePlan::execute`] bit for bit.
    pub fn execute_unsliced(&self, tensors: &[Tensor]) -> C64 {
        let out = self.plan.execute(tensors.to_vec());
        out.data.into_iter().fold(C64::ZERO, |acc, v| acc + v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::build_qaoa_network;
    use qokit_terms::labs::labs_terms;
    use qokit_terms::maxcut::maxcut_polynomial;
    use qokit_terms::Graph;

    fn bits(v: C64) -> (u64, u64) {
        (v.re.to_bits(), v.im.to_bits())
    }

    #[test]
    fn no_slicing_when_plan_fits() {
        let poly = maxcut_polynomial(&Graph::ring(6, 1.0));
        let net = build_qaoa_network(&poly, &[0.3], &[0.4], 0);
        let sp = SlicePlan::choose(&net.structure(), 30, 8).unwrap();
        assert_eq!(sp.n_slices(), 1);
        assert!(sp.slice_legs().is_empty());
        assert_eq!(sp.stats().overhead, 1.0);
    }

    #[test]
    fn slicing_respects_the_cap_and_keeps_the_value() {
        let poly = labs_terms(7);
        let net = build_qaoa_network(&poly, &[0.2, 0.1], &[0.4, 0.3], 19);
        let structure = net.structure();
        let unconstrained = SlicePlan::choose(&structure, 64, 0).unwrap();
        let full_width = unconstrained.width();
        assert!(full_width > 3);
        let cap = full_width - 2;
        let sliced = SlicePlan::choose(&structure, cap, 8).unwrap();
        assert!(sliced.width() <= cap);
        assert!(sliced.n_slices() >= 2);
        assert!(sliced.stats().overhead >= 1.0);
        let tensors = net.into_tensors();
        let serial = ExecPolicy::serial();
        let a = unconstrained.execute(&tensors, &serial);
        let b = sliced.execute(&tensors, &serial);
        assert!(a.approx_eq(b, 1e-10), "{a} vs {b}");
    }

    #[test]
    fn sliced_equals_unsliced_bit_for_bit() {
        let poly = labs_terms(6);
        let net = build_qaoa_network(&poly, &[0.15, 0.35], &[0.55, 0.25], 9);
        let structure = net.structure();
        let full = ContractionPlan::build(&structure).width();
        let sp = SlicePlan::choose(&structure, full.saturating_sub(2), 8).unwrap();
        assert!(sp.n_slices() >= 2);
        let tensors = net.into_tensors();
        let sliced = sp.execute(&tensors, &ExecPolicy::serial());
        let unsliced = sp.execute_unsliced(&tensors);
        assert_eq!(bits(sliced), bits(unsliced));
    }

    #[test]
    fn pool_widths_are_bit_identical() {
        let poly = labs_terms(6);
        let net = build_qaoa_network(&poly, &[0.15, 0.35], &[0.55, 0.25], 41);
        let structure = net.structure();
        let full = ContractionPlan::build(&structure).width();
        let sp = SlicePlan::choose(&structure, full.saturating_sub(2), 8).unwrap();
        let tensors = net.into_tensors();
        let reference = sp.execute(&tensors, &ExecPolicy::serial());
        for workers in [1usize, 2, 4] {
            let policy = ExecPolicy::rayon().with_threads(workers);
            let got = sp.execute(&tensors, &policy);
            assert_eq!(bits(got), bits(reference), "workers = {workers}");
        }
    }

    #[test]
    fn impossible_cap_still_reports_width_exceeded() {
        let poly = labs_terms(8);
        let net = build_qaoa_network(&poly, &[0.1; 4], &[0.2; 4], 0);
        let err = SlicePlan::choose(&net.structure(), 1, 2).unwrap_err();
        assert!(matches!(err, TnError::WidthExceeded { .. }));
    }
}
