//! Differential suite pinning the tensor-network backend to the
//! state-vector oracle — the contract that makes `Backend::TensorNet` a
//! first-class third backend:
//!
//! * TN amplitudes ≡ exact state-vector amplitudes (≤ 1e-10) for random
//!   2-/3-local spin polynomials, depths, and angles;
//! * every valid contraction order yields the same scalar (≤ 1e-12);
//! * sliced contraction is **bit-identical** to the unsliced open-leg
//!   execution, at every pool width;
//! * the `WidthExceeded → slicing` boundary sits exactly at the plan
//!   width;
//! * the `Backend::Auto` crossover picks TN for sparse/shallow and
//!   statevec for dense/deep, and both routes agree where they overlap.

use proptest::prelude::*;
use qokit::prelude::*;
use qokit::tensornet::{
    build_qaoa_network, qaoa_amplitude, ContractionPlan, SlicePlan, TnEngine, TnError, TnOptions,
    DEFAULT_MAX_SLICE_LEGS,
};
use qokit::terms::labs::labs_terms;
use qokit::terms::maxcut::maxcut_polynomial;

fn serial_sim(poly: &SpinPolynomial) -> FurSimulator {
    FurSimulator::with_options(
        poly,
        SimOptions {
            exec: Backend::Serial.into(),
            ..SimOptions::default()
        },
    )
}

/// Strategy: a random spin polynomial of 2- and 3-local terms on `n` vars.
/// Supports are decoded from raw indices so every term has distinct
/// variables (the shim has no `sample::subsequence`).
fn local_poly_strategy(n: usize, max_terms: usize) -> impl Strategy<Value = SpinPolynomial> {
    prop::collection::vec(
        (-1.5f64..1.5, 0usize..n, 0usize..64, 0usize..64, 0usize..2),
        1..max_terms,
    )
    .prop_map(move |raw| {
        let terms = raw
            .into_iter()
            .map(|(w, a, j, l, use3)| {
                let b = (a + 1 + j % (n - 1)) % n;
                let mut support = vec![a, b];
                if use3 == 1 && n >= 3 {
                    let picks: Vec<usize> = (0..n).filter(|v| *v != a && *v != b).collect();
                    support.push(picks[l % picks.len()]);
                }
                Term::new(w, &support)
            })
            .collect();
        SpinPolynomial::new(n, terms)
    })
}

/// Strategy: depth-`1..=3` QAOA angle schedules.
fn params_strategy() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (1usize..=3).prop_flat_map(|p| {
        (
            prop::collection::vec(-1.0f64..1.0, p),
            prop::collection::vec(-1.0f64..1.0, p),
        )
    })
}

/// Forces slicing: an engine whose width cap sits one under the planned
/// width (skipped as `None` when the plan is already trivial). The same
/// cap always selects the same slice plan, so engines built by this
/// helper are bit-compatible across `exec` policies.
fn sliced_engine_with(poly: &SpinPolynomial, p: usize, exec: ExecPolicy) -> Option<TnEngine> {
    let base = TnEngine::new(poly, p, TnOptions::default()).ok()?;
    let width = base.slice_plan().plan().width();
    if width < 2 {
        return None;
    }
    TnEngine::new(
        poly,
        p,
        TnOptions {
            width_cap: width - 1,
            exec,
            ..TnOptions::default()
        },
    )
    .ok()
}

fn sliced_engine(poly: &SpinPolynomial, p: usize) -> Option<TnEngine> {
    sliced_engine_with(poly, p, ExecPolicy::serial())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite (a): TN amplitude ≡ exact state-vector amplitude, for
    /// random sparse polynomials up to n = 12, p = 3.
    #[test]
    fn tn_amplitudes_match_statevector_oracle(
        (n, poly) in (4usize..=12).prop_flat_map(|n| (Just(n), local_poly_strategy(n, 10))),
        (gammas, betas) in params_strategy(),
        x_seed in 0u64..u64::MAX,
    ) {
        let amps = serial_sim(&poly)
            .simulate_qaoa(&gammas, &betas)
            .into_state()
            .into_amplitudes();
        let engine = TnEngine::new(&poly, gammas.len(), TnOptions::default()).unwrap();
        for k in 0..4u64 {
            let x = (x_seed.wrapping_mul(6364136223846793005).wrapping_add(k)) % (1 << n);
            let tn = engine.amplitude(&gammas, &betas, x);
            let sv = amps[x as usize];
            prop_assert!(
                tn.approx_eq(sv, 1e-10),
                "x = {x}: TN {tn} vs statevec {sv}"
            );
        }
    }

    /// Satellite (b): any valid contraction order yields the same scalar.
    /// The elimination order is permuted by proptest-chosen sort keys; the
    /// min-fill plan and the greedy baseline must agree with it ≤ 1e-12.
    #[test]
    fn any_elimination_order_contracts_to_the_same_scalar(
        poly in local_poly_strategy(6, 8),
        (gammas, betas) in params_strategy(),
        x in 0u64..64,
        keys in prop::collection::vec(0u32..u32::MAX, 64),
    ) {
        let net = build_qaoa_network(&poly, &gammas, &betas, x);
        let structure = net.structure();
        let reference = ContractionPlan::build(&structure)
            .execute(net.tensors().to_vec())
            .into_scalar();

        let mut legs: Vec<usize> = structure.iter().flatten().copied().collect();
        legs.sort_unstable();
        legs.dedup();
        legs.sort_by_key(|&l| (keys[l % keys.len()], l));
        let permuted = ContractionPlan::build_with_elimination_order(&structure, &legs)
            .execute(net.tensors().to_vec())
            .into_scalar();
        prop_assert!(
            permuted.approx_eq(reference, 1e-12),
            "permuted order {permuted} vs min-fill {reference}"
        );

        let (greedy, _) = net.clone().contract_greedy(40).unwrap();
        prop_assert!(
            greedy.approx_eq(reference, 1e-12),
            "greedy {greedy} vs min-fill {reference}"
        );
    }

    /// Satellite (a): slicing never changes a single bit of the result,
    /// and neither does the pool width executing the slices.
    #[test]
    fn sliced_amplitudes_are_bit_identical_across_pools(
        poly in local_poly_strategy(7, 9),
        (gammas, betas) in params_strategy(),
        x in 0u64..128,
    ) {
        // Plans too small to slice carry nothing to pin — skip the case.
        if let Some(engine) = sliced_engine(&poly, gammas.len()) {
            prop_assert!(engine.report().slicing.n_slices >= 2);
            let unsliced = engine.amplitude_unsliced(&gammas, &betas, x);
            let serial = engine.amplitude(&gammas, &betas, x);
            prop_assert_eq!(
                serial.re.to_bits(), unsliced.re.to_bits(),
                "sliced vs unsliced (re)"
            );
            prop_assert_eq!(serial.im.to_bits(), unsliced.im.to_bits());
            for workers in [1usize, 2, 4] {
                let exec = ExecPolicy::from(Backend::Rayon).with_threads(workers);
                let pooled = sliced_engine_with(&poly, gammas.len(), exec)
                    .unwrap()
                    .amplitude(&gammas, &betas, x);
                prop_assert_eq!(
                    pooled.re.to_bits(), serial.re.to_bits(),
                    "pool width {} changed bits", workers
                );
                prop_assert_eq!(pooled.im.to_bits(), serial.im.to_bits());
            }
        }
    }
}

/// Satellite (b): the `WidthExceeded` → slicing boundary. A cap exactly at
/// the planned width needs no slices; one below engages slicing; an
/// impossible cap still reports `WidthExceeded` with the residual width.
#[test]
fn width_cap_boundary_toggles_slicing() {
    let poly = maxcut_polynomial(&Graph::ring(10, 1.0));
    let net = build_qaoa_network(&poly, &[0.3], &[0.5], 0);
    let structure = net.structure();
    let width = ContractionPlan::build(&structure).width();
    assert!(width >= 2, "ring plan unexpectedly trivial");

    let at_cap = SlicePlan::choose(&structure, width, DEFAULT_MAX_SLICE_LEGS).unwrap();
    assert_eq!(at_cap.n_slices(), 1, "cap at plan width must not slice");
    assert!(at_cap.slice_legs().is_empty());

    let below = SlicePlan::choose(&structure, width - 1, DEFAULT_MAX_SLICE_LEGS).unwrap();
    assert!(below.n_slices() >= 2, "cap below plan width must slice");
    assert!(
        below.width() < width,
        "sliced width {} exceeds cap {}",
        below.width(),
        width - 1
    );

    match SlicePlan::choose(&structure, 0, DEFAULT_MAX_SLICE_LEGS) {
        Err(TnError::WidthExceeded { rank, cap }) => {
            assert_eq!(cap, 0);
            assert!(rank >= 1);
        }
        other => panic!("impossible cap must report WidthExceeded, got {other:?}"),
    }
}

/// Sliced and unsliced *energies* agree too (the engine's amplitude sum
/// inherits the bit-exactness of each amplitude).
#[test]
fn sliced_energy_matches_unsliced_energy() {
    let poly = maxcut_polynomial(&Graph::ring(8, 1.0));
    let (gammas, betas) = (vec![0.35, 0.1], vec![0.6, 0.2]);
    let plain = TnEngine::new(&poly, 2, TnOptions::default()).unwrap();
    let sliced = sliced_engine(&poly, 2).expect("ring p=2 plan is sliceable");
    assert!(sliced.report().slicing.n_slices >= 2);
    let a = plain.energy(&gammas, &betas);
    let b = sliced.energy(&gammas, &betas);
    assert!((a - b).abs() < 1e-10, "unsliced {a} vs sliced {b}");
}

/// Satellite (c): the Fig. 3 crossover regression. `Backend::Auto` must
/// pick TN for a sparse p = 1 ring and statevec for dense p = 8 LABS.
#[test]
fn auto_crossover_is_pinned() {
    // Sparse shallow ring: estimated contraction width ≪ n.
    let ring = maxcut_polynomial(&Graph::ring(16, 1.0));
    let ring_shape = ProblemShape::new(16, 1, ring.num_terms(), ring.degree() as usize);
    assert!(
        ring_shape.prefers_tensornet(),
        "ring n=16 p=1 must prefer TN"
    );
    assert_eq!(
        Backend::Auto.resolve(&ring_shape),
        Backend::TensorNet,
        "Auto must resolve sparse shallow to TensorNet"
    );

    // Dense deep LABS: the width estimate saturates at n.
    let labs = labs_terms(8);
    let labs_shape = ProblemShape::new(8, 8, labs.num_terms(), labs.degree() as usize);
    assert!(
        !labs_shape.prefers_tensornet(),
        "LABS n=8 p=8 must stay on the state vector"
    );
    assert_ne!(Backend::Auto.resolve(&labs_shape), Backend::TensorNet);
}

/// Satellite (c): both routes return the same energy on the overlapping
/// regime — a sweep driven through `Backend::TensorNet` matches the serial
/// state-vector sweep.
#[test]
fn tn_and_statevec_sweep_routes_agree() {
    let poly = maxcut_polynomial(&Graph::ring(10, 1.0));
    let points: Vec<SweepPoint> = (0..5)
        .map(|i| SweepPoint::new(vec![0.1 + 0.05 * i as f64], vec![0.7 - 0.06 * i as f64]))
        .collect();
    let tn = SweepRunner::with_options(
        FurSimulator::new(&poly),
        SweepOptions {
            exec: Backend::TensorNet.into(),
            nested: SweepNesting::Auto,
        },
    )
    .energies(&points);
    let sv = SweepRunner::with_options(
        FurSimulator::new(&poly),
        SweepOptions {
            exec: Backend::Serial.into(),
            nested: SweepNesting::Auto,
        },
    )
    .energies(&points);
    for (i, (a, b)) in tn.iter().zip(&sv).enumerate() {
        assert!((a - b).abs() < 1e-9, "point {i}: TN {a} vs statevec {b}");
    }
}

/// The light-cone evaluator agrees with the exact objective through every
/// engine choice (Serial and Rayon state-vector cones, TensorNet cones,
/// Auto per-cone crossover).
#[test]
fn lightcone_engines_agree_with_exact_objective() {
    let g = Graph::ring(12, 1.0);
    let (gammas, betas) = (vec![0.45], vec![0.75]);
    let exact = FurSimulator::new(&maxcut_polynomial(&g)).objective(&gammas, &betas);
    for backend in [
        Backend::Serial,
        Backend::Rayon,
        Backend::TensorNet,
        Backend::Auto,
    ] {
        let ev = LightConeEvaluator::with_options(
            g.clone(),
            LightConeOptions {
                exec: backend.into(),
                ..LightConeOptions::default()
            },
        );
        let e = ev.energy(&gammas, &betas);
        assert!(
            (e - exact).abs() < 1e-9,
            "{backend:?} light-cone {e} vs exact {exact}"
        );
    }
}

/// Plan-once/evaluate-many: one engine serves every angle set and basis
/// state at its structure, matching per-call greedy contraction.
#[test]
fn one_plan_serves_many_parameter_points() {
    let poly = labs_terms(5);
    let engine = TnEngine::new(&poly, 2, TnOptions::default()).unwrap();
    for (i, x) in [(0usize, 3u64), (1, 17), (2, 30)] {
        let g = [0.1 + 0.1 * i as f64, -0.2];
        let b = [0.5 - 0.1 * i as f64, 0.3];
        let (greedy, _) = qaoa_amplitude(&poly, &g, &b, x, 40).unwrap();
        let planned = engine.amplitude(&g, &b, x);
        assert!(
            planned.approx_eq(greedy, 1e-12),
            "angles #{i}: planned {planned} vs greedy {greedy}"
        );
    }
}
