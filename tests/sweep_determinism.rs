//! Determinism contracts of the coarse-grained parallel layer: with fixed
//! RNG seeds, multi-restart optimization and batched sweeps return
//! **bit-identical** results regardless of pool size — results are keyed
//! by restart/point index, never by completion order, and points-parallel
//! sweeps keep their kernels serial.

use qokit::optim::{schedules, MultiStart, MultiStartRun, NelderMead, RestartMethod, Spsa};
use qokit::prelude::*;
use qokit::terms::labs::labs_terms;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn in_pool<R: Send>(threads: usize, op: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(op)
}

fn assert_bit_identical(a: &MultiStartRun, b: &MultiStartRun, label: &str) {
    assert_eq!(a.best_restart, b.best_restart, "{label}: winner changed");
    assert_eq!(a.restarts.len(), b.restarts.len());
    for (i, (ra, rb)) in a.restarts.iter().zip(&b.restarts).enumerate() {
        assert_eq!(
            ra.best_f.to_bits(),
            rb.best_f.to_bits(),
            "{label}: restart {i} best_f"
        );
        assert_eq!(ra.best_x.len(), rb.best_x.len());
        for (xa, xb) in ra.best_x.iter().zip(&rb.best_x) {
            assert_eq!(xa.to_bits(), xb.to_bits(), "{label}: restart {i} best_x");
        }
        assert_eq!(ra.n_evals, rb.n_evals, "{label}: restart {i} n_evals");
    }
}

/// Serial-kernel QAOA objective: bit-identical on any pool by construction.
fn qaoa_objective() -> impl Fn(&[f64]) -> f64 + Sync {
    let sim = FurSimulator::with_options(
        &labs_terms(7),
        SimOptions {
            exec: ExecPolicy::serial(),
            ..SimOptions::default()
        },
    );
    move |x: &[f64]| {
        let (g, b) = schedules::unpack(x);
        sim.objective(g, b)
    }
}

#[test]
fn nelder_mead_restarts_are_pool_size_invariant() {
    let driver = MultiStart {
        method: RestartMethod::NelderMead(NelderMead {
            max_evals: 120,
            ..NelderMead::default()
        }),
        restarts: 5,
        seed: 17,
        bounds: vec![(-0.8, 0.8); 4],
    };
    let f = qaoa_objective();
    let reference = in_pool(1, || driver.minimize(&f));
    for threads in [2usize, 4] {
        let run = in_pool(threads, || driver.minimize(&f));
        assert_bit_identical(&reference, &run, &format!("NM, {threads} workers"));
    }
}

#[test]
fn spsa_restarts_are_pool_size_invariant() {
    // SPSA draws per-restart RNGs from (seed, restart index) — scheduling
    // must not perturb the streams.
    let driver = MultiStart {
        method: RestartMethod::Spsa(Spsa {
            iterations: 60,
            ..Spsa::default()
        }),
        restarts: 4,
        seed: 23,
        bounds: vec![(-0.8, 0.8); 4],
    };
    let f = qaoa_objective();
    let reference = in_pool(1, || driver.minimize(&f));
    for threads in [3usize, 4] {
        let run = in_pool(threads, || driver.minimize(&f));
        assert_bit_identical(&reference, &run, &format!("SPSA, {threads} workers"));
    }
}

#[test]
fn restart_ordering_is_by_index_not_completion() {
    // On a real pool restarts finish in arbitrary order; slot `i` of the
    // result must nevertheless be exactly what running the optimizer
    // sequentially from starting point `i` produces.
    let nm = NelderMead {
        max_evals: 60,
        ..NelderMead::default()
    };
    let driver = MultiStart {
        method: RestartMethod::NelderMead(nm.clone()),
        restarts: 6,
        seed: 5,
        bounds: vec![(-2.0, 2.0), (-2.0, 2.0)],
    };
    let f = |x: &[f64]| (x[0] - 0.7).powi(2) + (x[1] + 0.2).powi(2) + (3.0 * x[0]).cos() * 0.1;
    let run = in_pool(4, || driver.minimize(&f));
    for (i, (r, x0)) in run
        .restarts
        .iter()
        .zip(driver.starting_points())
        .enumerate()
    {
        let expect = nm.minimize(f, &x0);
        assert_eq!(
            r.best_f.to_bits(),
            expect.best_f.to_bits(),
            "restart {i} does not descend from starting point {i}"
        );
        for (a, b) in r.best_x.iter().zip(&expect.best_x) {
            assert_eq!(a.to_bits(), b.to_bits(), "restart {i} best_x");
        }
    }
}

#[test]
fn points_parallel_sweep_is_pool_size_invariant() {
    let make_runner = || {
        SweepRunner::with_options(
            FurSimulator::with_options(
                &labs_terms(8),
                SimOptions {
                    exec: ExecPolicy::serial(),
                    ..SimOptions::default()
                },
            ),
            SweepOptions {
                exec: ExecPolicy::rayon().with_min_len(1).with_min_chunk(8),
                nested: SweepNesting::PointsParallel,
            },
        )
    };
    let points: Vec<SweepPoint> = (0..9)
        .map(|i| SweepPoint::new(vec![0.05 * i as f64, 0.2], vec![0.5, -0.03 * i as f64]))
        .collect();
    let reference = in_pool(1, || make_runner().energies(&points));
    for threads in [2usize, 4] {
        let got = in_pool(threads, || make_runner().energies(&points));
        for (i, (a, b)) in reference.iter().zip(&got).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "point {i}, {threads} workers");
        }
    }
}

#[test]
fn batched_random_search_reproduces_sequential_stream() {
    // Same seed -> same sample sequence -> bit-identical result, whether
    // the evaluator is the sequential objective or a batched sweep.
    let sim = FurSimulator::with_options(
        &labs_terms(7),
        SimOptions {
            exec: ExecPolicy::serial(),
            ..SimOptions::default()
        },
    );
    let bounds = [(-0.6, 0.6), (-0.6, 0.6)];
    let mut rng = StdRng::seed_from_u64(31);
    let sequential =
        qokit::optim::random_search(|x| sim.objective(&[x[0]], &[x[1]]), &bounds, 25, &mut rng);
    let runner = SweepRunner::with_options(
        FurSimulator::with_options(
            &labs_terms(7),
            SimOptions {
                exec: ExecPolicy::serial(),
                ..SimOptions::default()
            },
        ),
        SweepOptions {
            exec: ExecPolicy::rayon().with_min_len(1).with_min_chunk(8),
            nested: SweepNesting::PointsParallel,
        },
    );
    let mut rng = StdRng::seed_from_u64(31);
    let batched = qokit::optim::random_search_batched(
        |pts| {
            let pairs: Vec<(f64, f64)> = pts.iter().map(|p| (p[0], p[1])).collect();
            runner.energies_p1(&pairs)
        },
        &bounds,
        25,
        &mut rng,
    );
    assert_eq!(sequential.best_x, batched.best_x);
    assert_eq!(sequential.best_f.to_bits(), batched.best_f.to_bits());
    for (a, b) in sequential.history.iter().zip(&batched.history) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn lane_batched_multistart_is_pool_size_invariant_and_equals_plain_driver() {
    // `minimize_batched` adds two layers the plain driver lacks — restart
    // lanes on sibling subset pools and candidate-batch objective calls —
    // and must change nothing observable: for a pointwise-equal objective
    // it is bit-identical to `minimize`, at every pool size.
    let driver = MultiStart {
        method: RestartMethod::NelderMead(NelderMead {
            max_evals: 100,
            ..NelderMead::default()
        }),
        restarts: 5,
        seed: 29,
        bounds: vec![(-0.8, 0.8); 4],
    };
    let f = qaoa_objective();
    let reference = in_pool(1, || driver.minimize(&f));
    let batch_f = |xs: &[Vec<f64>]| -> Vec<f64> { xs.iter().map(|x| f(x)).collect() };
    for threads in [1usize, 2, 4] {
        let run = in_pool(threads, || driver.minimize_batched(&batch_f));
        assert_bit_identical(
            &reference,
            &run,
            &format!("lane-batched NM, {threads} workers"),
        );
    }
}

#[test]
fn lane_batched_multistart_through_sweep_runner_matches_serial_objective() {
    // The full production composition: restart lanes × candidate batches
    // evaluated by a points-parallel SweepRunner — still bit-identical to
    // the sequential driver on the serial objective.
    let p = 2;
    let driver = MultiStart {
        method: RestartMethod::NelderMead(NelderMead {
            max_evals: 80,
            ..NelderMead::default()
        }),
        restarts: 4,
        seed: 13,
        bounds: vec![(-0.7, 0.7); 2 * p],
    };
    let f = qaoa_objective();
    let reference = driver.minimize(&f);
    let runner = SweepRunner::with_options(
        FurSimulator::with_options(
            &labs_terms(7),
            SimOptions {
                exec: ExecPolicy::serial(),
                ..SimOptions::default()
            },
        ),
        SweepOptions {
            exec: ExecPolicy::rayon().with_min_len(1).with_min_chunk(8),
            nested: SweepNesting::PointsParallel,
        },
    );
    let run = in_pool(4, || {
        driver.minimize_batched(&|xs: &[Vec<f64>]| {
            let points: Vec<SweepPoint> = xs
                .iter()
                .map(|x| {
                    let (g, b) = schedules::unpack(x);
                    SweepPoint::new(g.to_vec(), b.to_vec())
                })
                .collect();
            runner.energies(&points)
        })
    });
    assert_bit_identical(&reference, &run, "lanes x sweep batches");
}

#[test]
fn dist_scan_aggregates_are_pool_size_invariant() {
    // The batch-sharded scan's selection aggregates must not depend on
    // how many workers execute the supersteps.
    use qokit::core::landscape::LandscapeAggregator;
    use qokit::dist::{Axis, DistSweepOptions, DistSweepRunner, Grid2d};
    use std::sync::Arc;
    let make = || {
        DistSweepRunner::with_options(
            Arc::new(FurSimulator::with_options(
                &labs_terms(7),
                SimOptions {
                    exec: ExecPolicy::serial(),
                    ..SimOptions::default()
                },
            )),
            DistSweepOptions {
                ranks: 3,
                sweep: SweepOptions {
                    exec: ExecPolicy::rayon().with_min_len(1).with_min_chunk(8),
                    nested: SweepNesting::PointsParallel,
                },
                chunk: 5,
            },
        )
    };
    let grid = Grid2d::new(Axis::new(-0.6, 0.6, 8), Axis::new(-0.6, 0.6, 8));
    let reference = in_pool(1, || make().scan(&grid, LandscapeAggregator::new(6)));
    for threads in [2usize, 4] {
        let scan = in_pool(threads, || make().scan(&grid, LandscapeAggregator::new(6)));
        assert_eq!(scan.agg.argmin(), reference.agg.argmin());
        assert_eq!(scan.agg.top_k(), reference.agg.top_k());
        assert_eq!(
            scan.agg.sum().to_bits(),
            reference.agg.sum().to_bits(),
            "rank-order merge must fix the sum for a fixed rank count"
        );
    }
}
