//! Failure-injection suite: every crate's guard rails, exercised from the
//! outside. These are the errors a downstream user will actually hit —
//! mismatched parameter lengths, invalid rank counts, quantization
//! overflow, out-of-range qubits — and each must fail loudly and
//! specifically, not corrupt state.

use qokit::core::batch::SweepError;
use qokit::costvec::{CostVec, QuantizeError};
use qokit::dist::{BspComm, DistError, DistSimulator};
use qokit::optim::{MultiStart, MultiStartError, NelderMead, RestartMethod};
use qokit::prelude::*;
use qokit::terms::labs::labs_terms;

#[test]
fn mismatched_parameter_lengths_panic() {
    let sim = FurSimulator::new(&labs_terms(5));
    let err = std::panic::catch_unwind(|| sim.simulate_qaoa(&[0.1, 0.2], &[0.3]));
    assert!(err.is_err());
}

#[test]
fn distributed_rank_validation_is_an_error_not_a_panic() {
    let poly = labs_terms(6);
    assert!(matches!(
        DistSimulator::new(poly.clone(), 5),
        Err(DistError::RanksNotPowerOfTwo(5))
    ));
    assert!(matches!(
        DistSimulator::new(poly, 16),
        Err(DistError::TooManyRanks { n: 6, ranks: 16 })
    ));
}

#[test]
fn dist_error_messages_are_actionable() {
    let msg = DistError::TooManyRanks { n: 6, ranks: 16 }.to_string();
    assert!(msg.contains("2·log2(16)"), "{msg}");
    let msg = DistError::RanksNotPowerOfTwo(5).to_string();
    assert!(msg.contains("power of two"), "{msg}");
}

#[test]
fn quantization_overflow_is_reported_with_span() {
    let costs = vec![0.0, 1.0e6];
    match CostVec::quantize_exact(&costs, 1.0) {
        Err(QuantizeError::RangeTooWide {
            span,
            representable,
        }) => {
            assert_eq!(span, 1.0e6);
            assert!(representable < span);
        }
        other => panic!("expected RangeTooWide, got {other:?}"),
    }
}

#[test]
fn quantization_off_grid_points_to_the_culprit() {
    let costs = vec![0.0, 2.0, 3.5];
    match CostVec::quantize_exact(&costs, 1.0) {
        Err(QuantizeError::NotIntegral { index, value }) => {
            assert_eq!(index, 2);
            assert_eq!(value, 3.5);
        }
        other => panic!("expected NotIntegral, got {other:?}"),
    }
}

#[test]
fn quantization_rejects_nan_costs() {
    // Regression: NaN passed both the span and integrality checks (every
    // `NaN > x` comparison is false) and `NaN as u16` silently produced
    // level 0 — the global minimum.
    match CostVec::quantize_exact(&[1.0, f64::NAN], 1.0) {
        Err(QuantizeError::NonFinite { index, value }) => {
            assert_eq!(index, 1);
            assert!(value.is_nan());
        }
        other => panic!("expected NonFinite, got {other:?}"),
    }
}

#[test]
fn poisoned_recycler_shard_does_not_kill_the_next_sweep() {
    // Regression: the buffer recycler used `lock().unwrap()`, so a panic
    // while a shard lock was held poisoned the mutex and the *next* sweep
    // panicked inside `checkout` — contradicting the "pools stay
    // reusable" guarantee the rest of this suite pins.
    use qokit::core::batch::{SweepOptions, SweepPoint, SweepRunner};
    use qokit::statevec::ExecPolicy;
    let runner = SweepRunner::with_options(
        FurSimulator::new(&labs_terms(5)),
        SweepOptions {
            exec: ExecPolicy::serial(),
            ..SweepOptions::default()
        },
    );
    let points: Vec<SweepPoint> = (0..4)
        .map(|i| SweepPoint::p1(0.1 * i as f64, 0.2))
        .collect();
    let clean = runner.energies(&points);
    runner.debug_poison_recycler();
    // The serial backend evaluates on this thread, so every checkout hits
    // the poisoned shard; it must recover (dropping the cached buffers),
    // not panic — and the energies must be unaffected.
    let after = runner.energies(&points);
    for (a, b) in clean.iter().zip(&after) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn tensornet_width_cap_reports_rank_and_cap() {
    let poly = labs_terms(9);
    let err = qokit::tensornet::qaoa_amplitude(&poly, &[0.1; 3], &[0.2; 3], 0, 4).unwrap_err();
    match err {
        qokit::tensornet::TnError::WidthExceeded { rank, cap } => {
            assert_eq!(cap, 4);
            assert!(rank > 4);
        }
    }
}

#[test]
fn custom_initial_state_dimension_is_checked() {
    let sim = FurSimulator::with_options(
        &labs_terms(5),
        SimOptions {
            initial: InitialState::Custom(StateVec::zero_state(4)),
            ..SimOptions::default()
        },
    );
    let err = std::panic::catch_unwind(|| sim.simulate_qaoa(&[], &[]));
    assert!(err.is_err(), "wrong-dimension custom state must panic");
}

#[test]
fn dicke_weight_out_of_range_panics() {
    let err = std::panic::catch_unwind(|| StateVec::dicke_state(4, 5));
    assert!(err.is_err());
}

#[test]
fn polynomial_variable_bounds_are_enforced() {
    let err = std::panic::catch_unwind(|| SpinPolynomial::new(3, vec![Term::new(1.0, &[3])]));
    assert!(err.is_err());
}

#[test]
fn graph_invariants_are_enforced() {
    assert!(std::panic::catch_unwind(|| Graph::new(3, vec![(0, 0, 1.0)])).is_err());
    assert!(std::panic::catch_unwind(|| Graph::new(2, vec![(0, 5, 1.0)])).is_err());
}

#[test]
fn from_cost_vector_rejects_bad_length() {
    let err = std::panic::catch_unwind(|| {
        FurSimulator::from_cost_vector(CostVec::F64(vec![0.0; 3]), SimOptions::default())
    });
    assert!(err.is_err());
}

#[test]
fn brute_force_guards_against_huge_scans() {
    let poly = labs_terms(31);
    let err = std::panic::catch_unwind(|| poly.brute_force_minimum());
    assert!(err.is_err(), "n = 31 brute force must refuse");
}

#[test]
fn panicking_sweep_point_poisons_only_itself_and_pool_survives() {
    // A sweep task that panics (here: a malformed point whose γ/β lengths
    // disagree) must yield a clean per-point error, leave every other
    // point's result intact, and leave the pool fully reusable — the
    // coarse-grained analogue of vendor/rayon's pool_stress panics.
    let runner = SweepRunner::with_options(
        FurSimulator::new(&labs_terms(6)),
        SweepOptions {
            exec: ExecPolicy::rayon().with_min_len(1).with_min_chunk(4),
            nested: SweepNesting::PointsParallel,
        },
    );
    let mut points: Vec<SweepPoint> = (0..6)
        .map(|i| SweepPoint::p1(0.1 * i as f64, 0.3))
        .collect();
    points[3] = SweepPoint::new(vec![0.1, 0.2], vec![0.3]); // length mismatch
    let checked = runner.energies_checked(&points);
    for (i, r) in checked.iter().enumerate() {
        if i == 3 {
            match r {
                Err(SweepError::PointPanicked { index, message }) => {
                    assert_eq!(*index, 3);
                    assert!(message.contains("same length"), "{message}");
                }
                other => panic!("expected PointPanicked, got {other:?}"),
            }
        } else {
            assert!(r.is_ok(), "point {i} must be unaffected");
        }
    }
    // The clean-error form names the poisoned point.
    let err = runner.try_energies(&points).unwrap_err();
    assert!(err.to_string().contains("sweep point 3"), "{err}");
    // The pool is still healthy: a fresh batch and a fresh panic-free run
    // both work.
    let ok = runner.energies(&points[..3]);
    assert_eq!(ok.len(), 3);
    assert!(ok.iter().all(|e| e.is_finite()));
}

#[test]
fn panicking_point_inside_a_subset_pool_poisons_only_itself() {
    // Split nesting runs each point inside a SubsetPool slice of the
    // workers. A panic there must unwind through the subset's scoped
    // execution into a per-point error, leave sibling lanes' points
    // untouched, and leave both the subsets and the parent pool reusable.
    let runner = SweepRunner::with_options(
        FurSimulator::new(&labs_terms(6)),
        SweepOptions {
            exec: ExecPolicy::rayon()
                .with_threads(4)
                .with_min_len(1)
                .with_min_chunk(4),
            nested: SweepNesting::Split {
                points: 2,
                kernels_per_point: 2,
            },
        },
    );
    let mut points: Vec<SweepPoint> = (0..8)
        .map(|i| SweepPoint::p1(0.1 * i as f64, 0.3))
        .collect();
    points[5] = SweepPoint::new(vec![0.1, 0.2], vec![0.3]); // length mismatch
    let checked = runner.energies_checked(&points);
    for (i, r) in checked.iter().enumerate() {
        if i == 5 {
            match r {
                Err(SweepError::PointPanicked { index, message }) => {
                    assert_eq!(*index, 5);
                    assert!(message.contains("same length"), "{message}");
                }
                other => panic!("expected PointPanicked, got {other:?}"),
            }
        } else {
            assert!(r.is_ok(), "point {i} must be unaffected");
        }
    }
    // Subset pools and the parent pool stay healthy: a fresh Split batch
    // completes with finite energies.
    let ok = runner.energies(&points[..4]);
    assert_eq!(ok.len(), 4);
    assert!(ok.iter().all(|e| e.is_finite()));
}

#[test]
fn panicking_restart_poisons_only_itself_and_pool_survives() {
    let driver = MultiStart {
        method: RestartMethod::NelderMead(NelderMead {
            max_evals: 40,
            ..NelderMead::default()
        }),
        restarts: 5,
        seed: 9,
        bounds: vec![(-1.0, 1.0), (-1.0, 1.0)],
    };
    let poison = driver.starting_points()[1].clone();
    let err = driver
        .try_minimize(&move |x: &[f64]| {
            assert!(x != poison.as_slice(), "injected failure in restart 1");
            x[0] * x[0] + x[1] * x[1]
        })
        .unwrap_err();
    match err {
        MultiStartError::RestartPanicked { restart, message } => {
            assert_eq!(restart, 1);
            assert!(message.contains("injected failure"), "{message}");
        }
        other => panic!("expected RestartPanicked, got {other:?}"),
    }
    // Pool reusable: the same driver immediately runs clean.
    let run = driver.minimize(&|x: &[f64]| x[0] * x[0] + x[1] * x[1]);
    assert_eq!(run.restarts.len(), 5);
    assert!(run.best().best_f < 1e-4);
}

#[test]
fn panicking_dist_rank_unwinds_through_the_pool() {
    // A failing rank task must propagate through the pool's scoped API —
    // not leak a detached OS thread — and leave the pool reusable.
    let comm = BspComm::new(4);
    let mut states = vec![0u32; 4];
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        comm.superstep(&mut states, |rank, _| {
            assert!(rank != 1, "injected rank failure");
        });
    }));
    assert!(result.is_err());
    // Both the BSP communicator and the wider pool still work.
    let mut states = vec![0u32; 4];
    comm.superstep(&mut states, |rank, s| *s = rank as u32);
    assert_eq!(states, vec![0, 1, 2, 3]);
    let sim = DistSimulator::new(labs_terms(6), 4).unwrap();
    let r = sim.simulate_qaoa(&[0.2], &[0.5]);
    assert!((r.state.norm_sqr() - 1.0).abs() < 1e-10);
}

#[test]
fn poisoned_point_in_a_dist_scan_names_rank_and_global_index() {
    // Batch-sharded scans contain a point panic inside its rank's
    // superstep: the error names the rank and the *global* point index,
    // sibling ranks finish their superstep, and runner + pool stay
    // reusable afterwards.
    use qokit::core::landscape::LandscapeAggregator;
    use qokit::dist::{DistSweepError, DistSweepOptions, DistSweepRunner};
    use std::sync::Arc;
    let runner = DistSweepRunner::with_options(
        Arc::new(FurSimulator::new(&labs_terms(6))),
        DistSweepOptions {
            ranks: 4,
            sweep: SweepOptions {
                exec: ExecPolicy::rayon().with_min_len(1).with_min_chunk(4),
                nested: SweepNesting::PointsParallel,
            },
            chunk: 2,
        },
    );
    let mut points: Vec<SweepPoint> = (0..16)
        .map(|i| SweepPoint::p1(0.05 * i as f64, 0.3))
        .collect();
    // Global index 9 lands in rank 2's contiguous slice [8, 12).
    points[9] = SweepPoint::new(vec![0.1], vec![0.2, 0.3]); // length mismatch
    let err = runner
        .try_scan(&points[..], LandscapeAggregator::new(2))
        .unwrap_err();
    match &err {
        DistSweepError::PointPanicked {
            rank,
            index,
            message,
        } => {
            assert_eq!(*rank, 2);
            assert_eq!(*index, 9);
            assert!(message.contains("same length"), "{message}");
        }
        other => panic!("unexpected error: {other:?}"),
    }
    assert!(err.to_string().contains("point 9"), "{err}");
    assert!(err.to_string().contains("rank 2"), "{err}");
    // Containment: the same runner immediately scans clean input, with
    // every point accounted for.
    let ok = runner.scan(&points[..9], LandscapeAggregator::new(2));
    assert_eq!(ok.agg.count(), 9);
    assert!(ok.agg.min_energy().unwrap().is_finite());
}

#[test]
fn panicking_batched_restart_poisons_only_itself() {
    // The lane-batched multi-start driver matches try_minimize's
    // containment: the lowest poisoned restart is named, sibling lanes
    // complete, and the subset pools are reusable.
    let driver = MultiStart {
        method: RestartMethod::NelderMead(NelderMead {
            max_evals: 40,
            ..NelderMead::default()
        }),
        restarts: 5,
        seed: 9,
        bounds: vec![(-1.0, 1.0), (-1.0, 1.0)],
    };
    let poison = driver.starting_points()[3].clone();
    let err = driver
        .try_minimize_batched(&move |xs: &[Vec<f64>]| {
            xs.iter()
                .map(|x| {
                    assert!(x != &poison, "injected failure in restart 3");
                    x[0] * x[0] + x[1] * x[1]
                })
                .collect()
        })
        .unwrap_err();
    match err {
        MultiStartError::RestartPanicked { restart, message } => {
            assert_eq!(restart, 3);
            assert!(message.contains("injected failure"), "{message}");
        }
        other => panic!("expected RestartPanicked, got {other:?}"),
    }
    let run = driver.minimize_batched(&|xs: &[Vec<f64>]| {
        xs.iter().map(|x| x[0] * x[0] + x[1] * x[1]).collect()
    });
    assert_eq!(run.restarts.len(), 5);
    assert!(run.best().best_f < 1e-4);
}

#[test]
fn panicking_edge_cone_poisons_only_its_evaluation() {
    // A panic while simulating one edge's light cone must surface as a
    // clean error naming the *global* edge index, while sibling edge
    // batches run to completion and the pool stays reusable.
    use qokit::core::lightcone::{cone_zz, LightConeError};
    use std::sync::atomic::{AtomicUsize, Ordering};
    let ev = LightConeEvaluator::with_options(
        Graph::ring(12, 1.0),
        LightConeOptions {
            exec: ExecPolicy::rayon().with_threads(4),
            dedup: false, // one cone per edge, so cone index = edge index
            ..LightConeOptions::default()
        },
    );
    let plan = ev.plan(1).unwrap();
    let finished = AtomicUsize::new(0);
    let err = ev
        .try_zz_values_with(&plan, |i, ego| {
            if i == 7 {
                panic!("injected cone failure");
            }
            let zz = cone_zz(ego, &[0.3], &[0.5]);
            finished.fetch_add(1, Ordering::SeqCst);
            zz
        })
        .unwrap_err();
    match &err {
        LightConeError::ConePanicked { edge, message } => {
            assert_eq!(*edge, 7);
            assert!(message.contains("injected cone failure"), "{message}");
        }
        other => panic!("expected ConePanicked, got {other:?}"),
    }
    assert!(err.to_string().contains("edge 7"), "{err}");
    // Sibling edges all completed despite the poisoned one.
    assert_eq!(finished.load(Ordering::SeqCst), 11);
    // Pool and evaluator stay healthy: a clean evaluation runs right after.
    let run = ev.try_energy(&[0.3], &[0.5]).unwrap();
    assert!(run.energy.is_finite());
    assert_eq!(run.stats.edges, 12);
}

#[test]
fn too_wide_light_cone_is_an_error_not_an_allocation() {
    // Dense graphs (or excessive depth) must be refused with the offending
    // edge named, before any 2^q statevector is allocated.
    use qokit::core::lightcone::LightConeError;
    let ev = LightConeEvaluator::with_options(
        Graph::complete(10, 1.0),
        LightConeOptions {
            max_cone_qubits: 6,
            ..LightConeOptions::default()
        },
    );
    let err = ev.try_energy(&[0.3], &[0.5]).unwrap_err();
    match err {
        LightConeError::ConeTooWide { edge, qubits, max } => {
            assert_eq!(edge, 0);
            assert_eq!(qubits, 10);
            assert_eq!(max, 6);
        }
        other => panic!("expected ConeTooWide, got {other:?}"),
    }
}

#[test]
fn non_integral_quantized_simulator_degrades_gracefully() {
    // SK with Gaussian couplings cannot quantize exactly: the option must
    // silently fall back to f64, not corrupt the diagonal.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let sk = qokit::terms::sk::SkInstance::random_gaussian(8, &mut rng);
    let sim = FurSimulator::with_options(
        &sk.to_terms(),
        SimOptions {
            quantize_u16: true,
            exec: Backend::Serial.into(),
            ..SimOptions::default()
        },
    );
    assert!(matches!(sim.cost_diagonal(), CostVec::F64(_)));
    // And the physics is still right.
    let r = sim.simulate_qaoa(&[0.2], &[-0.4]);
    assert!((r.state().norm_sqr() - 1.0).abs() < 1e-10);
    let e = sim.get_expectation(&r);
    let (lo, hi) = sim.cost_diagonal().extrema();
    assert!(e >= lo && e <= hi);
}

/// A client that vanishes mid-job must not wedge the server: the
/// connection handler detects the disconnect, cancels the job, the lane
/// reaps it (freeing the admission slot), and the server keeps serving.
#[test]
fn client_disconnect_mid_job_is_reaped_and_server_stays_serviceable() {
    use qokit::dist::frame::{read_frame, write_frame};
    use qokit::dist::wire::SweepSimSpec;
    use qokit::serve::proto::{decode_response, encode_request, ServeRequest, ServeResponse};
    use qokit::serve::{JobOutcome, ProgressAction, ServeClient, Server, ServerConfig, SweepJob};
    use rand::SeedableRng;
    use std::time::{Duration, Instant};

    // Capacity 1, so the dead job's admission slot is observable: a new
    // submission is Rejected until the reap frees it.
    let handle = Server::bind(ServerConfig {
        queue_capacity: 1,
        ..ServerConfig::default()
    })
    .expect("bind")
    .spawn_thread()
    .expect("spawn");

    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let poly = qokit::terms::maxcut::maxcut_polynomial(&Graph::random_regular(10, 3, &mut rng));
    let job = SweepJob {
        poly: poly.clone(),
        spec: SweepSimSpec {
            precompute: PrecomputeMethod::Direct,
            quantize_u16: false,
            layout: Layout::Interleaved,
        },
        grid: Grid2d::new(Axis::new(-0.5, 0.5, 64), Axis::new(-0.4, 0.4, 64)),
        top_k: 2,
        chunk: 1,
        deadline_ms: 0,
        progress_every: 1,
    };

    // Submit over a raw socket, wait for the first Progress frame (the
    // job is demonstrably running), then vanish without a goodbye.
    {
        let mut raw = std::net::TcpStream::connect(handle.addr()).expect("connect raw");
        write_frame(&mut raw, &encode_request(&ServeRequest::Sweep(job.clone()))).expect("submit");
        let (payload, _) = read_frame(&mut raw).expect("first frame");
        assert!(matches!(
            decode_response(&payload).expect("decode"),
            ServeResponse::Progress { .. }
        ));
        // drop(raw): TCP FIN mid-job.
    }

    // The reap is asynchronous (disconnect poll + chunk-boundary cancel);
    // a fresh submission must be accepted within the grace window, and
    // the server must still produce correct results afterwards.
    let mut client = ServeClient::connect(handle.addr()).expect("connect");
    let small = SweepJob {
        grid: Grid2d::new(Axis::new(-0.5, 0.5, 4), Axis::new(-0.4, 0.4, 4)),
        progress_every: 0,
        ..job
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    let summary = loop {
        match client
            .submit_sweep(&small, |_| ProgressAction::Continue)
            .expect("rpc")
        {
            JobOutcome::Done(s) => break s,
            JobOutcome::Rejected { .. } => {
                assert!(
                    Instant::now() < deadline,
                    "abandoned job was never reaped: admission slot still held"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("expected Done or Rejected, got {other:?}"),
        }
    };
    assert_eq!(summary.evaluated, 16);
    assert!(
        summary.cache_hit,
        "the dead job's precompute must be reusable"
    );

    client.shutdown_server().expect("shutdown");
    handle.join();
}
