//! Batch-sharded scan equivalence: a `DistSweepRunner` scan — any rank
//! count, any chunk size, any pool size — must reproduce what one
//! `SweepRunner` over the whole batch computes, which in turn must match
//! a plain sequential loop, to ≤ 1e-12 per point. The aggregates the scan
//! streams (min, argmin, top-k, histogram, count) are order-independent
//! selections, so they are compared exactly once the per-point energies
//! agree; the aggregator's merge itself is pinned associative.
//!
//! CI runs this suite under `QOKIT_THREADS ∈ {1, 4}`; explicit
//! `with_threads` pools cover 1/2/4 workers on any host.

use proptest::prelude::*;
use qokit::core::landscape::{EnergySink, HistogramSpec, LandscapeAggregator};
use qokit::dist::{Axis, DistSweepOptions, DistSweepRunner, Grid2d, PointSource};
use qokit::prelude::*;
use qokit::terms::labs::labs_terms;
use std::sync::Arc;

/// Strategy: a random spin polynomial on `n` variables.
fn poly_strategy(n: usize, max_terms: usize) -> impl Strategy<Value = SpinPolynomial> {
    prop::collection::vec(
        (
            -2.0f64..2.0,
            prop::bits::u64::between(0, n).prop_map(move |m| m & ((1u64 << n) - 1)),
        ),
        1..max_terms,
    )
    .prop_map(move |pairs| {
        SpinPolynomial::new(
            n,
            pairs
                .into_iter()
                .map(|(w, m)| Term::from_mask(w, m))
                .collect(),
        )
    })
}

fn serial_sim(poly: &SpinPolynomial) -> FurSimulator {
    FurSimulator::with_options(
        poly,
        SimOptions {
            exec: ExecPolicy::serial(),
            ..SimOptions::default()
        },
    )
}

/// The ground truth: a sequential loop over the grid feeding one
/// aggregator in index order.
fn sequential_agg(
    sim: &FurSimulator,
    grid: &Grid2d,
    proto: LandscapeAggregator,
) -> LandscapeAggregator {
    let mut agg = proto;
    for i in 0..grid.len() {
        let p = grid.point(i);
        agg.observe(i, sim.objective(&p.gammas, &p.betas));
    }
    agg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// ranks ∈ {1, 2, 4} × pool ∈ {1, 2, 4}: every sharding of the scan
    /// reproduces the sequential aggregates. Points-parallel nesting keeps
    /// kernels serial, so min/top-k energies are *bit*-identical and
    /// argmin/count/histogram exact.
    #[test]
    fn dist_scan_equals_single_runner_equals_sequential(
        poly in poly_strategy(6, 12),
        steps_g in 3usize..7,
        steps_b in 2usize..6,
    ) {
        let grid = Grid2d::new(
            Axis::new(-0.7, 0.7, steps_g),
            Axis::new(-0.5, 0.5, steps_b),
        );
        let proto = || LandscapeAggregator::new(4).with_histogram(HistogramSpec {
            rows: steps_g,
            cols: steps_b,
            bin_rows: 2,
            bin_cols: 2,
        });
        let reference = sequential_agg(&serial_sim(&poly), &grid, proto());

        // The single-pool SweepRunner over the whole batch, streamed
        // through the same sink API.
        let single = SweepRunner::with_options(
            serial_sim(&poly),
            SweepOptions {
                exec: ExecPolicy::rayon().with_min_len(1).with_min_chunk(4),
                nested: SweepNesting::PointsParallel,
            },
        );
        let mut single_agg = proto();
        let pts: Vec<SweepPoint> = (0..grid.len()).map(|i| grid.point(i)).collect();
        single.scan_into(pts.iter().cloned(), 5, &mut single_agg).unwrap();
        prop_assert_eq!(&single_agg, &reference);

        for ranks in [1usize, 2, 4] {
            for threads in [1usize, 2, 4] {
                let runner = DistSweepRunner::with_options(
                    Arc::new(serial_sim(&poly)),
                    DistSweepOptions {
                        ranks,
                        sweep: SweepOptions {
                            exec: ExecPolicy::rayon()
                                .with_threads(threads)
                                .with_min_len(1)
                                .with_min_chunk(4),
                            nested: SweepNesting::PointsParallel,
                        },
                        chunk: 3,
                    },
                );
                let scan = runner.scan(&grid, proto());
                prop_assert_eq!(scan.points, grid.len());
                prop_assert_eq!(scan.agg.count(), reference.count());
                prop_assert_eq!(
                    scan.agg.argmin(), reference.argmin(),
                    "K = {}, threads = {}", ranks, threads
                );
                prop_assert_eq!(
                    scan.agg.min_energy().unwrap().to_bits(),
                    reference.min_energy().unwrap().to_bits()
                );
                prop_assert_eq!(scan.agg.top_k(), reference.top_k());
                prop_assert_eq!(scan.agg.histogram(), reference.histogram());
            }
        }
    }

    /// Nesting modes that parallelize kernels (Auto may resolve to Split
    /// or KernelsParallel) stay within 1e-12 of the sequential energies —
    /// compared through the min/top-k values they aggregate.
    #[test]
    fn dist_scan_with_auto_nesting_stays_within_tolerance(
        poly in poly_strategy(6, 10),
    ) {
        let grid = Grid2d::new(Axis::new(-0.6, 0.6, 5), Axis::new(-0.4, 0.4, 4));
        let reference = sequential_agg(&serial_sim(&poly), &grid, LandscapeAggregator::new(3));
        let runner = DistSweepRunner::with_options(
            Arc::new(serial_sim(&poly)),
            DistSweepOptions {
                ranks: 2,
                sweep: SweepOptions {
                    exec: ExecPolicy::rayon()
                        .with_threads(4)
                        .with_min_len(1)
                        .with_min_chunk(4),
                    nested: SweepNesting::Auto,
                },
                chunk: 4,
            },
        );
        let scan = runner.scan(&grid, LandscapeAggregator::new(3));
        prop_assert_eq!(scan.agg.count(), reference.count());
        // Kernel parallelism may reassociate reductions: compare values
        // within tolerance, and the selected indices through their
        // energies (distinct points can tie within 1e-12).
        let tol = 1e-12;
        prop_assert!(
            (scan.agg.min_energy().unwrap() - reference.min_energy().unwrap()).abs() <= tol
        );
        for (&(_, ea), &(_, eb)) in scan.agg.top_k().iter().zip(reference.top_k()) {
            prop_assert!((ea - eb).abs() <= tol, "{} vs {}", ea, eb);
        }
    }

    /// Aggregator merge is associative: any split of an observation stream
    /// into three shards, merged either way, produces identical aggregates
    /// (the property `BspComm::allreduce_with`'s rank-order fold relies
    /// on).
    #[test]
    fn aggregator_merge_is_associative(
        energies in prop::collection::vec(-10.0f64..10.0, 3..60),
        cut_a in 0usize..20,
        cut_b in 0usize..20,
    ) {
        let n = energies.len();
        let (a, b) = (cut_a.min(n), (cut_a + cut_b.max(1)).min(n));
        let fresh = |range: std::ops::Range<usize>| {
            let mut agg = LandscapeAggregator::new(5);
            for i in range {
                agg.observe(i as u64, energies[i]);
            }
            agg
        };
        // (A ⊕ B) ⊕ C
        let mut left = fresh(0..a);
        left.merge(fresh(a..b));
        left.merge(fresh(b..n));
        // A ⊕ (B ⊕ C)
        let mut tail = fresh(a..b);
        tail.merge(fresh(b..n));
        let mut right = fresh(0..a);
        right.merge(tail);
        // Selection aggregates are *exactly* associative (selection under
        // a strict total order); the floating-point sum only up to
        // reassociation — which is why the production merge fixes the
        // association by folding in rank order.
        prop_assert_eq!(left.top_k(), right.top_k());
        prop_assert_eq!(left.argmin(), right.argmin());
        prop_assert_eq!(
            left.min_energy().map(f64::to_bits),
            right.min_energy().map(f64::to_bits)
        );
        prop_assert_eq!(left.count(), right.count());
        prop_assert!((left.sum() - right.sum()).abs() <= 1e-12 * (1.0 + right.sum().abs()));
        // And both equal the unsharded stream's selections.
        let whole = fresh(0..n);
        prop_assert_eq!(left.top_k(), whole.top_k());
        prop_assert_eq!(left.argmin(), whole.argmin());
    }
}

/// Spawn-self worker entry: when the TCP transport launches this test
/// binary with `QOKIT_WORKER_ADDR` set, this "test" becomes the worker
/// loop and exits the process when the driver shuts it down. In a normal
/// test run the env var is absent and this is an instant no-op.
#[test]
fn tcp_worker_entry() {
    qokit::dist::worker::maybe_run_from_env();
}

/// The same aggregate bits come out of the lane engine, the in-process
/// transport, and real worker processes over loopback TCP, at 2 and 4
/// ranks — the scan payloads genuinely leave the process and come back
/// bit-identical.
#[test]
fn tcp_scan_matches_in_process_scan_bit_for_bit() {
    use qokit::dist::{InProcessTransport, TcpTransport, Transport, WorkerSpawn};

    let poly = labs_terms(6);
    let grid = Grid2d::new(Axis::new(-0.7, 0.7, 9), Axis::new(-0.5, 0.5, 7));
    let proto = || {
        LandscapeAggregator::new(5).with_histogram(HistogramSpec {
            rows: 9,
            cols: 7,
            bin_rows: 3,
            bin_cols: 3,
        })
    };
    let runner = |ranks| {
        DistSweepRunner::with_options(
            Arc::new(serial_sim(&poly)),
            DistSweepOptions {
                ranks,
                sweep: SweepOptions {
                    exec: ExecPolicy::rayon().with_min_len(1).with_min_chunk(4),
                    nested: SweepNesting::PointsParallel,
                },
                chunk: 5,
            },
        )
    };
    // Ground truth: the classic lane-engine scan (rank count is irrelevant
    // to its bits, pinned by the proptest above).
    let reference = runner(1).scan(&grid, proto());

    let spawn = WorkerSpawn::test_entry("tcp_worker_entry").expect("current_exe");
    for ranks in [2usize, 4] {
        let r = runner(ranks);
        let mut inproc = InProcessTransport::new(ranks);
        let ip = r.try_scan_on(&mut inproc, &poly, &grid, proto()).unwrap();
        let mut tcp = TcpTransport::spawn(ranks, &spawn).expect("spawn workers");
        let over_tcp = r.try_scan_on(&mut tcp, &poly, &grid, proto()).unwrap();

        for (label, scan) in [("in-process", &ip), ("tcp", &over_tcp)] {
            assert_eq!(scan.points, reference.points, "{label} K={ranks}");
            assert_eq!(scan.agg.count(), reference.agg.count(), "{label} K={ranks}");
            assert_eq!(
                scan.agg.argmin(),
                reference.agg.argmin(),
                "{label} K={ranks}"
            );
            assert_eq!(
                scan.agg.min_energy().unwrap().to_bits(),
                reference.agg.min_energy().unwrap().to_bits(),
                "{label} K={ranks}"
            );
            assert_eq!(scan.agg.top_k(), reference.agg.top_k(), "{label} K={ranks}");
            assert_eq!(
                scan.agg.histogram(),
                reference.agg.histogram(),
                "{label} K={ranks}"
            );
        }
        assert_eq!(over_tcp.supersteps, ip.supersteps);
        // The in-process transport moves no wire bytes; TCP reports the
        // real framed traffic.
        assert_eq!(inproc.stats().total_bytes(), 0);
        assert!(tcp.stats().total_bytes() > 0, "K={ranks}");
    }
}

/// A scan bigger than any rank's chunk budget: 2^16 lazily generated
/// points streamed through 4 ranks in 2^10-point chunks — the (debug-
/// scaled) shape of the ≥2^20-point production scan `abl_landscape`
/// exercises in release, with only O(ranks · chunk) live points.
#[test]
fn large_scan_streams_without_materializing_energies() {
    let poly = labs_terms(4);
    let grid = Grid2d::new(Axis::new(-0.8, 0.8, 256), Axis::new(-0.8, 0.8, 256));
    assert_eq!(grid.len(), 1 << 16);
    let runner = DistSweepRunner::with_options(
        Arc::new(serial_sim(&poly)),
        DistSweepOptions {
            ranks: 4,
            sweep: SweepOptions {
                exec: ExecPolicy::rayon(),
                nested: SweepNesting::PointsParallel,
            },
            chunk: 1 << 10,
        },
    );
    let scan = runner.scan(&grid, LandscapeAggregator::new(8));
    assert_eq!(scan.agg.count(), 1 << 16);
    assert_eq!(scan.supersteps, 16); // 2^14 per rank / 2^10 per superstep
    assert_eq!(scan.agg.top_k().len(), 8);
    // Symmetric LABS landscape: the grid minimum is strictly negative and
    // every top-k energy is finite and ordered.
    assert!(scan.agg.min_energy().unwrap() < 0.0);
    let tk = scan.agg.top_k();
    for w in tk.windows(2) {
        assert!(w[0].1 <= w[1].1);
    }
    // Spot-check the argmin against direct evaluation.
    let sim = serial_sim(&poly);
    let best = grid.point(scan.agg.argmin().unwrap());
    assert_eq!(
        sim.objective(&best.gammas, &best.betas).to_bits(),
        scan.agg.min_energy().unwrap().to_bits()
    );
}
