//! LABS ground-truth validation: the optimal-energy table shipped in
//! `qokit-terms` is re-derived from scratch through the cost-vector
//! precompute — the same code path the simulators rely on for overlap
//! computations.

use qokit::costvec::{precompute_fwht, CostVec, PrecomputeMethod};
use qokit::prelude::*;
use qokit::terms::labs;

/// Minimum LABS energy via the FWHT cost vector (fast enough for n ≈ 20+).
fn min_energy_via_costvec(n: usize) -> i64 {
    let poly = labs::energy_polynomial(n);
    let costs = precompute_fwht(&poly, Backend::Rayon);
    costs.iter().copied().fold(f64::INFINITY, f64::min).round() as i64
}

#[test]
fn known_optima_rederived_up_to_18() {
    for n in 3..=18 {
        assert_eq!(
            min_energy_via_costvec(n),
            labs::known_optimal_energy(n).unwrap(),
            "optimal LABS energy mismatch at n = {n}"
        );
    }
}

#[test]
#[ignore = "n = 19..=24 takes a few minutes in release mode"]
fn known_optima_rederived_up_to_24() {
    for n in 19..=24 {
        assert_eq!(
            min_energy_via_costvec(n),
            labs::known_optimal_energy(n).unwrap(),
            "optimal LABS energy mismatch at n = {n}"
        );
    }
}

#[test]
fn paper_terms_and_energy_polynomial_share_minimizers() {
    for n in [8usize, 11, 14] {
        let paper = labs::labs_terms(n);
        let energy = labs::energy_polynomial(n);
        let cv_paper = CostVec::from_polynomial(&paper, PrecomputeMethod::Fwht, Backend::Serial);
        let cv_energy = CostVec::from_polynomial(&energy, PrecomputeMethod::Fwht, Backend::Serial);
        assert_eq!(
            cv_paper.ground_state_indices(1e-9),
            cv_energy.ground_state_indices(1e-9),
            "n = {n}"
        );
    }
}

#[test]
fn ground_state_count_matches_symmetry_orbit() {
    // LABS energies are invariant under negation, reversal, and
    // alternating-sign flip, so optimal sets come in orbits whose size
    // divides 8; every orbit member must appear in the ground set.
    let n = 13;
    let poly = labs::energy_polynomial(n);
    let costs = precompute_fwht(&poly, Backend::Serial);
    let min = costs.iter().copied().fold(f64::INFINITY, f64::min);
    let ground: Vec<u64> = (0..costs.len() as u64)
        .filter(|&x| costs[x as usize] <= min + 1e-9)
        .collect();
    let mask = (1u64 << n) - 1;
    for &x in &ground {
        let neg = !x & mask;
        let rev = (0..n).fold(0u64, |acc, i| acc | (((x >> i) & 1) << (n - 1 - i)));
        assert!(ground.contains(&neg), "negation of {x:b} missing");
        assert!(ground.contains(&rev), "reversal of {x:b} missing");
    }
    // Barker-13 has E = 6 and (with its symmetric partners) a small orbit.
    assert_eq!(min as i64, 6);
}

#[test]
fn merit_factors_consistent_with_energy_table() {
    for n in 3..=32 {
        let e = labs::known_optimal_energy(n).unwrap() as f64;
        let mf = labs::optimal_merit_factor(n).unwrap();
        assert!((mf - (n * n) as f64 / (2.0 * e)).abs() < 1e-12);
        // Merit factors of optimal sequences sit in a narrow band.
        assert!(mf > 2.0 && mf < 15.0, "n = {n}: MF = {mf}");
    }
}

#[test]
fn term_count_closed_form() {
    // |T| of the paper polynomial: Σ over the structure of the triple sum.
    // Cross-check the generator against an independent O(n³) count.
    for n in [6usize, 10, 17, 25, 31] {
        let mut four = 0usize;
        for i in 0..n {
            for t in 1..n {
                for k in t + 1..n {
                    if i + k + t < n {
                        four += 1;
                    }
                }
            }
        }
        let mut two = 0usize;
        for i in 0..n {
            for k in 1..n {
                if i + 2 * k < n {
                    two += 1;
                }
            }
        }
        let poly = labs::labs_terms(n);
        assert_eq!(poly.num_terms(), four + two, "n = {n}");
    }
}

#[test]
fn quantization_headroom_for_large_n() {
    // §V-B: "maximum values of f are known for n < 65 and they are less
    // than 2^16" — check the weight-norm bound stays under u16 range for
    // the sizes the paper ran (the bound is loose but already fits).
    for n in [20usize, 31, 40] {
        let poly = labs::labs_terms(n);
        let span_bound = 2.0 * poly.weight_norm();
        if n <= 20 {
            let costs = precompute_fwht(&poly, Backend::Rayon);
            let q = CostVec::quantize_exact(&costs, 1.0);
            assert!(q.is_ok(), "n = {n} must quantize exactly");
        }
        // The true span is far below the weight-norm bound; record that the
        // bound itself is within an order of magnitude of 2^16 at n = 40.
        assert!(span_bound < 1.0e6, "n = {n}: bound {span_bound}");
    }
}
