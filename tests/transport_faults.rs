//! Transport fault injection over real worker processes: a dead peer, a
//! stalled peer, or a corrupt frame must surface as a rank-tagged
//! [`TransportError`](qokit::dist::TransportError) *within the configured
//! deadline* — never a hang — and the distributed statevector run over
//! TCP must stay bit-identical to the in-process engine when nothing
//! fails.
//!
//! Every TCP test here spawns this very binary as its workers (libtest
//! filter `tcp_worker_entry --exact`), so the suite is self-contained.

use qokit::dist::wire::{encode_frame, encode_response, Request, Response};
use qokit::dist::worker::WORKER_STALL_ENV;
use qokit::dist::{
    DistSimulator, InProcessTransport, TcpTransport, Transport, TransportErrorKind, WorkerSpawn,
};
use qokit::terms::labs::labs_terms;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// Spawn-self worker entry: a no-op in a normal test run, the worker
/// loop when the TCP transport launches this binary with
/// `QOKIT_WORKER_ADDR` set.
#[test]
fn tcp_worker_entry() {
    qokit::dist::worker::maybe_run_from_env();
}

fn worker_spawn() -> WorkerSpawn {
    WorkerSpawn::test_entry("tcp_worker_entry").expect("current_exe")
}

fn nops(k: usize) -> Vec<Request> {
    (0..k).map(|_| Request::Nop).collect()
}

/// Killing a worker mid-conversation turns the next collective into a
/// rank-tagged error on the dead rank, well inside the deadline.
#[test]
fn killed_worker_is_a_rank_tagged_error_not_a_hang() {
    let deadline = Duration::from_secs(10);
    let mut tcp =
        TcpTransport::spawn_with_deadline(2, &worker_spawn(), deadline).expect("spawn workers");
    // A healthy round first: both ranks answer.
    let responses = tcp.exchange(nops(2)).expect("healthy exchange");
    assert!(responses.iter().all(|r| matches!(r, Response::Ok)));

    tcp.kill_worker(1);
    let started = Instant::now();
    let err = tcp.exchange(nops(2)).expect_err("dead rank must fail");
    assert_eq!(err.rank, 1, "error must name the dead rank: {err}");
    assert!(
        matches!(
            err.kind,
            TransportErrorKind::Io(_) | TransportErrorKind::Deadline { .. }
        ),
        "unexpected kind: {err}"
    );
    assert!(
        started.elapsed() < deadline + Duration::from_secs(5),
        "took {:?} — the failure leaked past the deadline",
        started.elapsed()
    );
}

/// A worker that goes silent (the `QOKIT_WORKER_STALL_MS` hook sleeps
/// before answering) trips the per-collective deadline, reporting the
/// configured limit and the stalled rank.
#[test]
fn stalled_worker_hits_the_deadline() {
    let spawn = worker_spawn().with_env(WORKER_STALL_ENV, "30000");
    let deadline = Duration::from_millis(500);
    let mut tcp = TcpTransport::spawn_with_deadline(2, &spawn, deadline).expect("spawn workers");
    let started = Instant::now();
    let err = tcp
        .exchange(nops(2))
        .expect_err("stalled rank must time out");
    assert!(
        matches!(err.kind, TransportErrorKind::Deadline { limit_ms: 500 }),
        "unexpected kind: {err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "took {:?} — deadline did not bound the wait",
        started.elapsed()
    );
}

/// A peer that answers with a corrupted frame (checksum mismatch) is a
/// `Corrupt` error on that rank, not a decoded garbage response.
#[test]
fn corrupt_frame_is_flagged_with_the_guilty_rank() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let peer = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().unwrap();
        // Read and discard the driver's request frame, then reply with a
        // well-formed header whose payload has one bit flipped after the
        // checksum was computed.
        let mut frame = encode_frame(&encode_response(&Response::Ok));
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        let mut header = [0u8; 16];
        sock.read_exact(&mut header).unwrap();
        let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
        std::io::copy(&mut (&mut sock).take(len as u64), &mut std::io::sink()).unwrap();
        sock.write_all(&frame).unwrap();
        sock.flush().unwrap();
    });
    let conn = std::net::TcpStream::connect(addr).unwrap();
    let mut tcp = TcpTransport::from_streams(vec![conn], Duration::from_secs(10));
    let err = tcp.exchange(nops(1)).expect_err("corrupt frame must fail");
    assert_eq!(err.rank, 0);
    assert!(
        matches!(err.kind, TransportErrorKind::Corrupt(_)),
        "unexpected kind: {err}"
    );
    peer.join().unwrap();
}

/// Algorithm 4 over real worker processes: state slices cross the wire
/// through the driver-routed alltoall and every output — state bits,
/// expectation, overlap, min cost — matches the in-process engine
/// exactly, plain and `u16`-quantized, at 2 and 4 ranks.
#[test]
fn dist_sim_over_tcp_is_bit_identical() {
    let poly = labs_terms(7);
    let (gammas, betas) = (&[0.35, -0.6][..], &[0.8, 0.25][..]);
    let spawn = worker_spawn();
    for ranks in [2usize, 4] {
        let sim = DistSimulator::new(poly.clone(), ranks).unwrap();
        let plain = sim.simulate_qaoa(gammas, betas);
        let quant = sim.simulate_qaoa_quantized(gammas, betas);

        let mut tcp = TcpTransport::spawn(ranks, &spawn).expect("spawn workers");
        let over_tcp = sim.simulate_qaoa_on(&mut tcp, gammas, betas).unwrap();
        assert_eq!(over_tcp.expectation.to_bits(), plain.expectation.to_bits());
        assert_eq!(over_tcp.overlap.to_bits(), plain.overlap.to_bits());
        assert_eq!(over_tcp.min_cost.to_bits(), plain.min_cost.to_bits());
        assert_eq!(over_tcp.state.max_abs_diff(&plain.state), 0.0, "K={ranks}");
        assert!(!over_tcp.quantized);
        assert!(tcp.stats().total_bytes() > 0);
        assert_eq!(over_tcp.comm.alltoall_calls, plain.comm.alltoall_calls);

        let q_tcp = sim
            .simulate_qaoa_quantized_on(&mut tcp, gammas, betas)
            .unwrap();
        assert_eq!(q_tcp.quantized, quant.quantized);
        assert_eq!(q_tcp.expectation.to_bits(), quant.expectation.to_bits());
        assert_eq!(q_tcp.state.max_abs_diff(&quant.state), 0.0, "K={ranks}");
    }
}

/// The transport survives a failed collective: after an in-process run,
/// the same spawned pool serves further work (connections are not
/// poisoned by an earlier *successful* exchange — regression guard for
/// leftover buffered state).
#[test]
fn transport_is_reusable_across_engines() {
    let poly = labs_terms(6);
    let spawn = worker_spawn();
    let mut tcp = TcpTransport::spawn(2, &spawn).expect("spawn workers");
    let sim = DistSimulator::new(poly.clone(), 2).unwrap();
    let first = sim.simulate_qaoa_on(&mut tcp, &[0.4], &[0.7]).unwrap();
    let second = sim.simulate_qaoa_on(&mut tcp, &[0.4], &[0.7]).unwrap();
    assert_eq!(first.expectation.to_bits(), second.expectation.to_bits());
    assert_eq!(first.state.max_abs_diff(&second.state), 0.0);

    // And the in-process transport gives the same bits as both.
    let mut inproc = InProcessTransport::new(2);
    let local = sim.simulate_qaoa_on(&mut inproc, &[0.4], &[0.7]).unwrap();
    assert_eq!(local.expectation.to_bits(), first.expectation.to_bits());
}
