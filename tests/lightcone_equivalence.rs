//! The light-cone oracle suite: [`LightConeEvaluator`] pinned against the
//! exact full-statevector objective.
//!
//! For every random Erdős–Rényi and random-regular instance small enough
//! to simulate exactly (`n ≤ 16`, `p ∈ {1, 2}`), the light-cone energy
//! must match `FurSimulator::objective` on `maxcut_polynomial` to
//! `≤ 1e-9`, and must be **bit-identical** across pool sizes 1/2/4 and
//! across 1/2/4 distributed ranks.

use proptest::prelude::*;
use qokit::core::lightcone::{LightConeEvaluator, LightConeOptions};
use qokit::dist::DistLightCone;
use qokit::prelude::*;
use qokit::terms::maxcut::maxcut_polynomial;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random MaxCut instance from one of the two families of the paper's
/// large-graph experiments: G(n, 0.25) with random weights, or an
/// unweighted random-regular graph.
fn instance() -> impl Strategy<Value = Graph> {
    (6usize..=16, 0u64..u64::MAX, 0usize..2).prop_map(|(n, seed, family)| {
        let mut rng = StdRng::seed_from_u64(seed);
        match family {
            0 => {
                let g = Graph::erdos_renyi(n, 0.25, &mut rng);
                let g = if g.n_edges() == 0 {
                    Graph::ring(n, 1.0)
                } else {
                    g
                };
                g.with_random_weights(0.2, 1.8, &mut rng)
            }
            _ => {
                // n·d must be even for a d-regular graph to exist.
                let d = if n % 2 == 0 { 3 } else { 2 };
                Graph::random_regular(n, d, &mut rng)
            }
        }
    })
}

fn exact_energy(g: &Graph, gammas: &[f64], betas: &[f64]) -> f64 {
    FurSimulator::new(&maxcut_polynomial(g)).objective(gammas, betas)
}

fn lightcone_energy(g: &Graph, exec: ExecPolicy, gammas: &[f64], betas: &[f64]) -> f64 {
    LightConeEvaluator::with_options(
        g.clone(),
        LightConeOptions {
            exec,
            ..LightConeOptions::default()
        },
    )
    .energy(gammas, betas)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Light-cone energy ≡ exact statevector energy (p = 1 and p = 2),
    /// and dedup never changes the bits.
    #[test]
    fn energy_matches_exact_statevector(
        g in instance(),
        p in 1usize..=2,
        g1 in -1.5f64..1.5, g2 in -1.5f64..1.5,
        b1 in -1.5f64..1.5, b2 in -1.5f64..1.5,
    ) {
        let (gammas, betas) = (&[g1, g2][..p], &[b1, b2][..p]);
        let ev = LightConeEvaluator::new(g.clone());
        let run = ev.try_energy(gammas, betas).unwrap();
        let exact = exact_energy(&g, gammas, betas);
        prop_assert!(
            (run.energy - exact).abs() <= 1e-9,
            "n={} m={} p={p}: lightcone {} vs exact {}",
            g.n_vertices(), g.n_edges(), run.energy, exact
        );
        prop_assert_eq!(run.stats.edges, g.n_edges());
        prop_assert!(run.stats.unique_cones + run.stats.cache_hits == run.stats.edges);

        let undeduped = LightConeEvaluator::with_options(
            g.clone(),
            LightConeOptions { dedup: false, ..LightConeOptions::default() },
        )
        .try_energy(gammas, betas)
        .unwrap();
        prop_assert_eq!(undeduped.energy.to_bits(), run.energy.to_bits());
        prop_assert_eq!(undeduped.stats.cache_hits, 0);
    }

    /// The same bits come out of every pool size and every rank count.
    #[test]
    fn energy_is_bit_identical_across_pools_and_ranks(
        g in instance(),
        p in 1usize..=2,
        g1 in -1.5f64..1.5, g2 in -1.5f64..1.5,
        b1 in -1.5f64..1.5, b2 in -1.5f64..1.5,
    ) {
        let (gammas, betas) = (&[g1, g2][..p], &[b1, b2][..p]);
        let reference = lightcone_energy(&g, ExecPolicy::serial(), gammas, betas);
        for threads in [1usize, 2, 4] {
            let pooled = lightcone_energy(
                &g,
                ExecPolicy::rayon().with_threads(threads),
                gammas,
                betas,
            );
            prop_assert_eq!(pooled.to_bits(), reference.to_bits(), "threads = {}", threads);
        }
        for ranks in [1usize, 2, 4] {
            let dist = DistLightCone::new(LightConeEvaluator::new(g.clone()), ranks)
                .try_energy(gammas, betas)
                .unwrap();
            prop_assert_eq!(dist.energy.to_bits(), reference.to_bits(), "ranks = {}", ranks);
            prop_assert_eq!(dist.comm.total_bytes(), 0);
        }
    }
}

/// Depth 0 has an empty light cone: the energy is `−W/2` exactly, for
/// every family.
#[test]
fn depth_zero_is_minus_half_total_weight() {
    let mut rng = StdRng::seed_from_u64(3);
    let g = Graph::erdos_renyi(12, 0.3, &mut rng).with_random_weights(0.5, 1.5, &mut rng);
    let run = LightConeEvaluator::new(g.clone())
        .try_energy(&[], &[])
        .unwrap();
    assert!((run.energy + 0.5 * g.total_weight()).abs() < 1e-12);
    assert!((run.energy - exact_energy(&g, &[], &[])).abs() < 1e-9);
}

/// Spawn-self worker entry: a no-op in a normal test run, the worker
/// loop when the TCP transport launches this binary with
/// `QOKIT_WORKER_ADDR` set.
#[test]
fn tcp_worker_entry() {
    qokit::dist::worker::maybe_run_from_env();
}

/// Cone shards evaluated in worker processes over loopback TCP come back
/// bit-identical to the in-process transport and to the serial evaluator,
/// at 2 and 4 ranks.
#[test]
fn tcp_energy_matches_in_process_energy_bit_for_bit() {
    use qokit::dist::{InProcessTransport, TcpTransport, Transport, WorkerSpawn};

    let mut rng = StdRng::seed_from_u64(17);
    let g = Graph::random_regular(18, 3, &mut rng);
    let (gammas, betas) = (&[0.4, -0.8][..], &[0.7, 0.3][..]);
    let reference = lightcone_energy(&g, ExecPolicy::serial(), gammas, betas);

    let spawn = WorkerSpawn::test_entry("tcp_worker_entry").expect("current_exe");
    for ranks in [2usize, 4] {
        let dist = DistLightCone::new(LightConeEvaluator::new(g.clone()), ranks);
        let mut inproc = InProcessTransport::new(ranks);
        let ip = dist.try_energy_on(&mut inproc, gammas, betas).unwrap();
        assert_eq!(
            ip.energy.to_bits(),
            reference.to_bits(),
            "in-process K={ranks}"
        );
        assert_eq!(inproc.stats().total_bytes(), 0);

        let mut tcp = TcpTransport::spawn(ranks, &spawn).expect("spawn workers");
        let over_tcp = dist.try_energy_on(&mut tcp, gammas, betas).unwrap();
        assert_eq!(
            over_tcp.energy.to_bits(),
            reference.to_bits(),
            "tcp K={ranks}"
        );
        assert_eq!(over_tcp.stats.edges, g.n_edges());
        // Ego graphs and gamma/beta schedules really crossed the wire.
        assert!(tcp.stats().total_bytes() > 0, "K={ranks}");
    }
}

/// The ≥90 % cache-hit economics the evaluator exists for: on a
/// random-regular graph most radius-1 cones are copies of one local tree.
#[test]
fn random_regular_hit_rate_is_high() {
    let mut rng = StdRng::seed_from_u64(5);
    let g = Graph::random_regular(200, 3, &mut rng);
    let run = LightConeEvaluator::new(g)
        .try_energy(&[0.4], &[0.7])
        .unwrap();
    assert!(
        run.stats.hit_rate() > 0.9,
        "hit rate {} with {} unique cones over {} edges",
        run.stats.hit_rate(),
        run.stats.unique_cones,
        run.stats.edges
    );
}
