//! Batched-sweep equivalence: a `SweepRunner` batch must compute exactly
//! the function a sequential loop of single-point
//! `evolve_in_place` + energy evaluations computes.
//!
//! Properties run with a forced-parallel sweep policy (`min_len = 1`, tiny
//! `min_chunk`) so the pool paths genuinely engage even on small batches
//! and 1-core CI machines, across both `nested` modes and the X / XY-ring
//! mixers. CI additionally runs this whole suite under
//! `QOKIT_THREADS ∈ {1, 4}`. Points-parallel batches are pinned to
//! ≤ 1e-12 of the serial reference (they are in fact bit-identical — the
//! kernels inside each point run serially); kernels-parallel batches may
//! differ by floating-point association in reductions, bounded far below
//! 1e-12 at these sizes.

use proptest::prelude::*;
use qokit::prelude::*;
use qokit::terms::labs::labs_terms;

/// Strategy: a random spin polynomial on `n` variables.
fn poly_strategy(n: usize, max_terms: usize) -> impl Strategy<Value = SpinPolynomial> {
    prop::collection::vec(
        (
            -2.0f64..2.0,
            prop::bits::u64::between(0, n).prop_map(move |m| m & ((1u64 << n) - 1)),
        ),
        1..max_terms,
    )
    .prop_map(move |pairs| {
        SpinPolynomial::new(
            n,
            pairs
                .into_iter()
                .map(|(w, m)| Term::from_mask(w, m))
                .collect(),
        )
    })
}

/// Strategy: a batch of sweep points with depth `p`.
fn points_strategy(p: usize, max_points: usize) -> impl Strategy<Value = Vec<SweepPoint>> {
    prop::collection::vec(
        (
            prop::collection::vec(-1.0f64..1.0, p),
            prop::collection::vec(-1.0f64..1.0, p),
        ),
        1..max_points,
    )
    .prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(g, b)| SweepPoint::new(g, b))
            .collect()
    })
}

/// The reference: a sequential loop of single-point evolutions and energy
/// evaluations on a serial simulator.
fn sequential_energies(sim: &FurSimulator, points: &[SweepPoint]) -> Vec<f64> {
    points
        .iter()
        .map(|p| {
            let mut state = sim.initial_state();
            sim.evolve_in_place(&mut state, &p.gammas, &p.betas);
            sim.cost_diagonal()
                .expectation(state.amplitudes(), ExecPolicy::serial())
        })
        .collect()
}

fn serial_sim(poly: &SpinPolynomial, mixer: Mixer) -> FurSimulator {
    FurSimulator::with_options(
        poly,
        SimOptions {
            mixer,
            exec: ExecPolicy::serial(),
            ..SimOptions::default()
        },
    )
}

/// The forced-parallel sweep policy: every pool path engages.
fn forced() -> ExecPolicy {
    ExecPolicy::rayon().with_min_len(1).with_min_chunk(4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batched_sweep_matches_sequential_loop(
        poly in poly_strategy(7, 16),
        points in points_strategy(2, 10),
    ) {
        for mixer in [Mixer::X, Mixer::XyRing] {
            let reference = sequential_energies(&serial_sim(&poly, mixer), &points);
            for nested in [SweepNesting::PointsParallel, SweepNesting::KernelsParallel] {
                let runner = SweepRunner::with_options(
                    serial_sim(&poly, mixer),
                    SweepOptions { exec: forced(), nested },
                );
                let batched = runner.energies(&points);
                prop_assert_eq!(batched.len(), reference.len());
                for (i, (a, b)) in reference.iter().zip(&batched).enumerate() {
                    prop_assert!(
                        (a - b).abs() <= 1e-12,
                        "{:?}/{:?} point {}: {} vs {}", mixer, nested, i, a, b
                    );
                }
            }
        }
    }

    #[test]
    fn split_nesting_matches_sequential_loop_at_all_pool_sizes(
        poly in poly_strategy(6, 12),
        points in points_strategy(2, 8),
    ) {
        // Every (p, k) factorization of every pool size in {1, 2, 4} —
        // plus shapes that only fit after clamping — must compute the
        // sequential loop's energies to ≤ 1e-12. Subset pools carve the
        // sweep pool into p lanes of k kernel workers each.
        let reference = sequential_energies(&serial_sim(&poly, Mixer::X), &points);
        for threads in [1usize, 2, 4] {
            let mut shapes: Vec<(usize, usize)> = (1..=threads)
                .filter(|p| threads % p == 0)
                .map(|p| (p, threads / p))
                .collect();
            shapes.push((threads + 1, 2)); // clamps to the pool
            for (p, k) in shapes {
                let runner = SweepRunner::with_options(
                    serial_sim(&poly, Mixer::X),
                    SweepOptions {
                        exec: ExecPolicy::rayon()
                            .with_threads(threads)
                            .with_min_len(1)
                            .with_min_chunk(4),
                        nested: SweepNesting::Split { points: p, kernels_per_point: k },
                    },
                );
                let batched = runner.energies(&points);
                prop_assert_eq!(batched.len(), reference.len());
                for (i, (a, b)) in reference.iter().zip(&batched).enumerate() {
                    prop_assert!(
                        (a - b).abs() <= 1e-12,
                        "threads {}, shape {}x{}, point {}: {} vs {}",
                        threads, p, k, i, a, b
                    );
                }
            }
        }
    }

    #[test]
    fn repeated_batches_reuse_buffers_without_drift(
        points in points_strategy(1, 6),
    ) {
        // Round-tripping the same batch through one runner twice must give
        // bit-identical answers — recycled buffers carry no state over.
        let runner = SweepRunner::with_options(
            serial_sim(&labs_terms(6), Mixer::X),
            SweepOptions { exec: forced(), nested: SweepNesting::PointsParallel },
        );
        let a = runner.energies(&points);
        let b = runner.energies(&points);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

/// Deterministic check across explicit pool sizes: the same batch under
/// 1-, 2- and 4-worker sweep pools must match the sequential loop.
#[test]
fn explicit_pool_sizes_match_sequential_loop() {
    let poly = labs_terms(8);
    let points: Vec<SweepPoint> = (0..7)
        .map(|i| {
            SweepPoint::new(
                vec![0.1 + 0.05 * i as f64, -0.3],
                vec![0.6 - 0.04 * i as f64, 0.2],
            )
        })
        .collect();
    for mixer in [Mixer::X, Mixer::XyRing] {
        let reference = sequential_energies(&serial_sim(&poly, mixer), &points);
        for threads in [1usize, 2, 4] {
            let runner = SweepRunner::with_options(
                serial_sim(&poly, mixer),
                SweepOptions {
                    exec: ExecPolicy::rayon()
                        .with_threads(threads)
                        .with_min_len(1)
                        .with_min_chunk(8),
                    nested: SweepNesting::PointsParallel,
                },
            );
            let batched = runner.energies(&points);
            // Serial kernels inside each point: bit-identical, not merely
            // within tolerance.
            for (a, b) in reference.iter().zip(&batched) {
                assert_eq!(a.to_bits(), b.to_bits(), "{mixer:?}, threads = {threads}");
            }
        }
    }
}

/// The batched grid search must visit the exact sequential grid: same best
/// point, same history, when driven through a `SweepRunner`.
#[test]
fn batched_grid_search_equals_sequential_grid_search() {
    let poly = labs_terms(7);
    let sim = serial_sim(&poly, Mixer::X);
    let sequential = qokit::optim::grid_search_2d(
        |g, b| sim.objective(&[g], &[b]),
        (-0.5, 0.5),
        (-0.4, 0.4),
        9,
    );
    let runner = SweepRunner::with_options(
        serial_sim(&poly, Mixer::X),
        SweepOptions {
            exec: forced(),
            nested: SweepNesting::PointsParallel,
        },
    );
    let batched = qokit::optim::grid_search_2d_batched(
        |pts| runner.energies_p1(pts),
        (-0.5, 0.5),
        (-0.4, 0.4),
        9,
    );
    assert_eq!(sequential.best_x, batched.best_x);
    assert_eq!(sequential.best_f.to_bits(), batched.best_f.to_bits());
    assert_eq!(sequential.n_evals, batched.n_evals);
    assert_eq!(sequential.history.len(), batched.history.len());
    for (a, b) in sequential.history.iter().zip(&batched.history) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// Batched Nelder–Mead driven by a `SweepRunner` (reflection/expansion
/// pairs, initial simplex, and shrink rows each as one batched pool
/// dispatch) must walk the exact trajectory of sequential Nelder–Mead on
/// one-at-a-time objective calls.
#[test]
fn batched_nelder_mead_via_sweep_runner_matches_sequential() {
    use qokit::optim::{schedules, NelderMead};
    let poly = labs_terms(7);
    let p = 2;
    let nm = NelderMead {
        max_evals: 120,
        ..NelderMead::default()
    };
    let x0 = {
        let (g, b) = schedules::linear_ramp(p, 0.6);
        schedules::pack(&g, &b)
    };

    let sim = serial_sim(&poly, Mixer::X);
    let sequential = nm.minimize(
        |x| {
            let (g, b) = schedules::unpack(x);
            sim.objective(g, b)
        },
        &x0,
    );

    // Points-parallel keeps kernels serial, so each candidate's energy is
    // bit-identical to the sequential objective call — and therefore so is
    // the whole optimization trajectory.
    let runner = SweepRunner::with_options(
        serial_sim(&poly, Mixer::X),
        SweepOptions {
            exec: forced(),
            nested: SweepNesting::PointsParallel,
        },
    );
    let batched = nm.minimize_batched(
        |xs| {
            let points: Vec<SweepPoint> = xs
                .iter()
                .map(|x| {
                    let (g, b) = schedules::unpack(x);
                    SweepPoint::new(g.to_vec(), b.to_vec())
                })
                .collect();
            runner.energies(&points)
        },
        &x0,
    );

    assert_eq!(sequential.best_x, batched.best_x);
    assert_eq!(sequential.best_f.to_bits(), batched.best_f.to_bits());
    assert_eq!(sequential.n_evals, batched.n_evals);
    for (a, b) in sequential.history.iter().zip(&batched.history) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// Custom extractors see the same evolved states the plain simulator
/// produces: overlaps from a batch match one-at-a-time overlaps.
#[test]
fn batched_overlaps_match_single_point_runs() {
    let poly = labs_terms(7);
    let sim = serial_sim(&poly, Mixer::X);
    let points: Vec<SweepPoint> = (0..5)
        .map(|i| SweepPoint::p1(0.1 * i as f64, 0.5 - 0.05 * i as f64))
        .collect();
    let runner = SweepRunner::with_options(
        serial_sim(&poly, Mixer::X),
        SweepOptions {
            exec: forced(),
            nested: SweepNesting::PointsParallel,
        },
    );
    let overlaps: Vec<f64> = runner
        .evaluate_with(&points, |s, state, _| {
            s.cost_diagonal().overlap(state.amplitudes())
        })
        .into_iter()
        .map(Result::unwrap)
        .collect();
    for (p, o) in points.iter().zip(&overlaps) {
        let r = sim.simulate_qaoa(&p.gammas, &p.betas);
        assert!((sim.get_overlap(&r) - o).abs() < 1e-12);
    }
}
