//! Property-based interleaved-vs-split layout equivalence.
//!
//! The split-complex layer's contract (see `qokit_statevec::split`):
//!
//! * interleaved ↔ split conversion is a pure transpose — round trips are
//!   **bit-identical**;
//! * every `*_split` kernel computes the same function as its interleaved
//!   twin to ≤1e-12 per amplitude (FWHT and diagonal phase are in fact
//!   bit-identical; SU(2)/SU(4) may differ by summation association);
//! * the full simulator agrees across {Interleaved, Split} ×
//!   {Serial, Rayon} × pool sizes {1, 2, 4}, pinned against the
//!   `reference` oracle.
//!
//! Forced-parallel policies (`min_len = 1`, tiny `min_chunk`) make the pool
//! paths engage even on small vectors and 1-core CI machines.

use proptest::prelude::*;
use qokit::prelude::*;
use qokit::statevec::fwht::{fwht, fwht_split};
use qokit::statevec::su2::{apply_mat2, apply_mat2_split};
use qokit::statevec::su4::{apply_xy, apply_xy_split};
use qokit::statevec::{reference, Mat2};

/// The forced-parallel policy: every sweep takes the pool path.
fn forced() -> ExecPolicy {
    ExecPolicy::rayon().with_min_len(1).with_min_chunk(4)
}

/// Strategy: a normalized random state on `n` qubits, `n` drawn from range.
fn state_strategy(n_range: std::ops::RangeInclusive<usize>) -> impl Strategy<Value = StateVec> {
    n_range.prop_flat_map(|n| {
        prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1 << n).prop_map(|pairs| {
            let mut s = StateVec::from_amplitudes(
                pairs.into_iter().map(|(re, im)| C64::new(re, im)).collect(),
            );
            s.normalize();
            s
        })
    })
}

/// Strategy: a random spin polynomial on `n` variables.
fn poly_strategy(n: usize, max_terms: usize) -> impl Strategy<Value = SpinPolynomial> {
    prop::collection::vec(
        (
            -2.0f64..2.0,
            prop::bits::u64::between(0, n).prop_map(move |m| m & ((1u64 << n) - 1)),
        ),
        1..max_terms,
    )
    .prop_map(move |pairs| {
        SpinPolynomial::new(
            n,
            pairs
                .into_iter()
                .map(|(w, m)| Term::from_mask(w, m))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn round_trip_is_bit_identical(state in state_strategy(1..=10)) {
        let split = SplitStateVec::from(&state);
        let back = split.clone().into_state_vec();
        prop_assert_eq!(state.amplitudes(), back.amplitudes());
        prop_assert_eq!(split.max_abs_diff_interleaved(state.amplitudes()), 0.0);
    }

    #[test]
    fn fwht_split_matches_interleaved(state in state_strategy(2..=10)) {
        let mut inter = state.clone();
        let mut split = SplitStateVec::from(&state);
        fwht(inter.amplitudes_mut(), Backend::Serial);
        {
            let (re, im) = split.planes_mut();
            fwht_split(re, im, Backend::Serial);
        }
        // The complex butterfly never mixes planes: exact equality.
        prop_assert_eq!(split.max_abs_diff_interleaved(inter.amplitudes()), 0.0);

        let mut par = SplitStateVec::from(&state);
        let (re, im) = par.planes_mut();
        fwht_split(re, im, forced());
        prop_assert_eq!(&par, &split);
    }

    #[test]
    fn su2_split_matches_interleaved(state in state_strategy(2..=10), theta in -3.0f64..3.0) {
        let n = state.n_qubits();
        let u = Mat2::rx(theta).matmul(&Mat2::rz(theta * 0.5));
        for q in 0..n {
            let mut inter = state.clone();
            let mut split = SplitStateVec::from(&state);
            apply_mat2(inter.amplitudes_mut(), q, &u, Backend::Serial);
            {
                let (re, im) = split.planes_mut();
                apply_mat2_split(re, im, q, &u, Backend::Serial);
            }
            prop_assert!(split.max_abs_diff_interleaved(inter.amplitudes()) < 1e-12, "qubit {q}");

            let mut par = SplitStateVec::from(&state);
            let (re, im) = par.planes_mut();
            apply_mat2_split(re, im, q, &u, forced());
            prop_assert_eq!(&par, &split, "qubit {}", q);
        }
    }

    #[test]
    fn su4_split_matches_interleaved(state in state_strategy(3..=9), theta in -3.0f64..3.0) {
        let n = state.n_qubits();
        for (qa, qb) in [(0, 1), (0, n - 1), (n / 2, n - 1), (n - 1, 0)] {
            if qa == qb {
                continue;
            }
            let mut inter = state.clone();
            let mut split = SplitStateVec::from(&state);
            apply_xy(inter.amplitudes_mut(), qa, qb, theta, Backend::Serial);
            {
                let (re, im) = split.planes_mut();
                apply_xy_split(re, im, qa, qb, theta, Backend::Serial);
            }
            prop_assert!(
                split.max_abs_diff_interleaved(inter.amplitudes()) < 1e-12,
                "xy pair ({qa},{qb})"
            );

            let mut par = SplitStateVec::from(&state);
            let (re, im) = par.planes_mut();
            apply_xy_split(re, im, qa, qb, theta, forced());
            prop_assert_eq!(&par, &split, "xy pair ({},{})", qa, qb);
        }
    }

    #[test]
    fn diag_split_matches_interleaved(state in state_strategy(4..=10), gamma in -2.0f64..2.0) {
        let costs: Vec<f64> = (0..state.dim()).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
        let mut inter = state.clone();
        let mut split = SplitStateVec::from(&state);
        qokit::statevec::diag::apply_phase(inter.amplitudes_mut(), &costs, gamma, Backend::Serial);
        {
            let (re, im) = split.planes_mut();
            qokit::statevec::diag::apply_phase_split(re, im, &costs, gamma, Backend::Serial);
        }
        // Same per-element rotation arithmetic: exact equality.
        prop_assert_eq!(split.max_abs_diff_interleaved(inter.amplitudes()), 0.0);

        let (re, im) = split.planes();
        let e_i = qokit::statevec::diag::expectation(inter.amplitudes(), &costs, Backend::Serial);
        let e_s = qokit::statevec::diag::expectation_split(re, im, &costs, Backend::Serial);
        prop_assert_eq!(e_i, e_s);
        let e_p = qokit::statevec::diag::expectation_split(re, im, &costs, forced());
        prop_assert!((e_s - e_p).abs() < 1e-12, "{} vs {}", e_s, e_p);
    }

    #[test]
    fn full_simulator_layouts_agree(
        poly in poly_strategy(8, 20),
        gammas in prop::collection::vec(-1.0f64..1.0, 3),
        betas in prop::collection::vec(-1.0f64..1.0, 3),
    ) {
        for mixer in [Mixer::X, Mixer::XyRing] {
            let inter = FurSimulator::with_options(&poly, SimOptions {
                mixer,
                exec: ExecPolicy::serial(),
                ..SimOptions::default()
            });
            let split = FurSimulator::with_options(&poly, SimOptions {
                mixer,
                exec: forced().with_layout(Layout::Split),
                ..SimOptions::default()
            });
            let ri = inter.simulate_qaoa(&gammas, &betas);
            let rs = split.simulate_qaoa(&gammas, &betas);
            prop_assert!(
                ri.state().max_abs_diff(rs.state()) < 1e-12,
                "{mixer:?}: layouts diverged"
            );
            let ei = inter.get_expectation(&ri);
            let es = split.get_expectation(&rs);
            prop_assert!((ei - es).abs() < 1e-12, "{mixer:?}: {ei} vs {es}");
        }
    }
}

/// Oracle pin: every layout × backend × pool-size combination reproduces
/// the `reference` kernels' single-layer pipeline to ≤1e-12.
#[test]
fn layouts_and_pools_match_reference_oracle() {
    let n = 6;
    let poly = qokit::terms::maxcut::maxcut_polynomial(&Graph::ring(n, 1.0));
    let (gamma, beta) = (0.4, 0.7);

    // Independent pipeline built from reference kernels.
    let costs = CostVec::from_polynomial(&poly, PrecomputeMethod::Direct, Backend::Serial);
    let mut expect = StateVec::uniform_superposition(n).into_amplitudes();
    expect = reference::apply_phase_reference(&expect, &costs.to_f64_vec(), gamma);
    for q in 0..n {
        expect = reference::apply_1q_reference(&expect, q, &Mat2::rx(beta));
    }

    for layout in [Layout::Interleaved, Layout::Split] {
        for base in [ExecPolicy::serial(), ExecPolicy::rayon()] {
            for threads in [1usize, 2, 4] {
                let exec = base
                    .with_threads(threads)
                    .with_min_len(1)
                    .with_min_chunk(4)
                    .with_layout(layout);
                let sim = FurSimulator::with_options(
                    &poly,
                    SimOptions {
                        exec,
                        ..SimOptions::default()
                    },
                );
                let r = sim.simulate_qaoa(&[gamma], &[beta]);
                for (a, b) in r.state().amplitudes().iter().zip(expect.iter()) {
                    assert!(
                        a.approx_eq(*b, 1e-12),
                        "{layout:?}/{:?}/threads={threads}: {a} vs {b}",
                        base.backend
                    );
                }
            }
        }
    }
}

/// CostVec-level split equivalence across both representations.
#[test]
fn costvec_split_matches_interleaved_both_representations() {
    let poly = qokit::terms::labs::labs_terms(11);
    let cv = CostVec::from_polynomial(&poly, PrecomputeMethod::Fwht, Backend::Serial);
    let q = CostVec::quantize_exact(&cv.to_f64_vec(), 1.0).expect("LABS costs are integral");
    for costs in [&cv, &q] {
        let mut inter = StateVec::uniform_superposition(11);
        let mut split = SplitStateVec::from(&inter);
        costs.apply_phase(inter.amplitudes_mut(), 0.37, Backend::Serial);
        {
            let (re, im) = split.planes_mut();
            costs.apply_phase_split(re, im, 0.37, Backend::Serial);
        }
        assert_eq!(split.max_abs_diff_interleaved(inter.amplitudes()), 0.0);
        let (re, im) = split.planes();
        let ei = costs.expectation(inter.amplitudes(), Backend::Serial);
        let es = costs.expectation_split(re, im, Backend::Serial);
        assert_eq!(ei, es);
    }
}
