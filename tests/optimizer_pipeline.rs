//! End-to-end parameter-optimization pipelines (the Fig. 1 loop): the
//! optimizers must actually improve QAOA objectives through the fast
//! simulator, and the depth-extension heuristics must behave.

use qokit::optim::{schedules, NelderMead, Spsa};
use qokit::prelude::*;
use qokit::terms::{labs, maxcut};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn maxcut_sim(n: usize, seed: u64) -> FurSimulator {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = Graph::random_regular(n, 3, &mut rng);
    FurSimulator::with_options(
        &maxcut::maxcut_polynomial(&g),
        SimOptions {
            exec: Backend::Serial.into(),
            ..SimOptions::default()
        },
    )
}

#[test]
fn nelder_mead_improves_over_ramp_start() {
    let sim = maxcut_sim(10, 5);
    let p = 3;
    let (g0, b0) = schedules::linear_ramp(p, 0.5);
    let x0 = schedules::pack(&g0, &b0);
    let start = sim.objective(&g0, &b0);
    let nm = NelderMead {
        max_evals: 250,
        ..NelderMead::default()
    };
    let r = nm.minimize(
        |x| {
            let (g, b) = schedules::unpack(x);
            sim.objective(g, b)
        },
        &x0,
    );
    assert!(
        r.best_f < start - 0.1,
        "optimizer failed to improve: {start} → {}",
        r.best_f
    );
    // The optimized energy beats the uniform state's.
    assert!(r.best_f < sim.objective(&[], &[]));
}

#[test]
fn ramp_already_beats_uniform_state() {
    // The corrected TQA sign convention must anneal downhill.
    let sim = maxcut_sim(12, 7);
    let (g, b) = schedules::linear_ramp(6, 0.4);
    assert!(sim.objective(&g, &b) < sim.objective(&[], &[]) - 0.5);
}

#[test]
fn interp_ladder_tracks_depth() {
    // Optimize at p, extend with INTERP to p+1: the extended start must
    // not be drastically worse than the optimum it came from, and
    // re-optimizing must improve it further.
    let sim = maxcut_sim(10, 11);
    let p = 2;
    let (g0, b0) = schedules::linear_ramp(p, 0.5);
    let nm = NelderMead {
        max_evals: 200,
        ..NelderMead::default()
    };
    let r = nm.minimize(
        |x| {
            let (g, b) = schedules::unpack(x);
            sim.objective(g, b)
        },
        &schedules::pack(&g0, &b0),
    );
    let (g_opt, b_opt) = schedules::unpack(&r.best_x);
    let g_ext = schedules::interp_extend(g_opt);
    let b_ext = schedules::interp_extend(b_opt);
    let extended_start = sim.objective(&g_ext, &b_ext);
    assert!(
        extended_start < r.best_f + 1.0,
        "INTERP start collapsed: {extended_start} vs {}",
        r.best_f
    );
    let r2 = nm.minimize(
        |x| {
            let (g, b) = schedules::unpack(x);
            sim.objective(g, b)
        },
        &schedules::pack(&g_ext, &b_ext),
    );
    assert!(r2.best_f <= extended_start + 1e-9);
    assert!(
        r2.best_f <= r.best_f + 0.2,
        "depth increase should not hurt"
    );
}

#[test]
fn spsa_improves_labs_objective() {
    let poly = labs::labs_terms(8);
    let sim = FurSimulator::with_options(
        &poly,
        SimOptions {
            exec: Backend::Serial.into(),
            ..SimOptions::default()
        },
    );
    let (g0, b0) = schedules::linear_ramp(2, 0.4);
    let start = sim.objective(&g0, &b0);
    let mut rng = StdRng::seed_from_u64(3);
    let spsa = Spsa {
        iterations: 150,
        ..Spsa::default()
    };
    let r = spsa.minimize(
        |x| {
            let (g, b) = schedules::unpack(x);
            sim.objective(g, b)
        },
        &schedules::pack(&g0, &b0),
        &mut rng,
    );
    assert!(
        r.best_f <= start,
        "SPSA went uphill: {start} → {}",
        r.best_f
    );
}

#[test]
fn p1_landscape_symmetry() {
    // E(γ, β) = E(−γ, −β): complex conjugation symmetry of the QAOA state
    // for real cost functions.
    let sim = maxcut_sim(10, 13);
    for (g, b) in [(0.3, -0.7), (0.9, 0.2), (-0.4, -0.1)] {
        let e1 = sim.objective(&[g], &[b]);
        let e2 = sim.objective(&[-g], &[-b]);
        assert!((e1 - e2).abs() < 1e-10, "({g}, {b}): {e1} vs {e2}");
    }
}

#[test]
fn grid_search_finds_good_p1_point() {
    let sim = maxcut_sim(8, 17);
    let uniform = sim.objective(&[], &[]);
    let r = qokit::optim::grid_search_2d(
        |g, b| sim.objective(&[g], &[b]),
        (-1.0, 1.0),
        (-1.0, 1.0),
        15,
    );
    assert!(r.best_f < uniform, "grid must beat the uniform state");
    assert_eq!(r.n_evals, 225);
}

#[test]
fn optimization_through_gate_baseline_matches_fast_path() {
    // The two objective implementations must drive the optimizer to the
    // same place (they compute the same function).
    let mut rng = StdRng::seed_from_u64(23);
    let g = Graph::random_regular(8, 3, &mut rng);
    let poly = maxcut::maxcut_polynomial(&g);
    let fast = FurSimulator::with_options(
        &poly,
        SimOptions {
            exec: Backend::Serial.into(),
            ..SimOptions::default()
        },
    );
    let gate = qokit::gates::GateSimulator::new(
        poly,
        qokit::gates::GateSimOptions {
            exec: Backend::Serial.into(),
            ..qokit::gates::GateSimOptions::default()
        },
    );
    for (gm, bt) in [(0.2, -0.5), (0.7, -0.1)] {
        let a = fast.objective(&[gm], &[bt]);
        let b = gate.objective(&[gm], &[bt]);
        assert!((a - b).abs() < 1e-9);
    }
}
