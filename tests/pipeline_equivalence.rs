//! Cross-crate equivalence suite: every simulator in the workspace must
//! produce the same physics. The fast precomputed-diagonal simulator is
//! checked against the gate-based baseline (all compilation modes), the
//! distributed simulator, and the tensor-network contractor, on all three
//! problem families of the paper.

use qokit::dist::DistSimulator;
use qokit::gates::{CompiledMixer, GateSimOptions, GateSimulator, PhaseStyle};
use qokit::prelude::*;
use qokit::terms::{labs, maxcut, portfolio::PortfolioInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn serial_fur(poly: &SpinPolynomial) -> FurSimulator {
    FurSimulator::with_options(
        poly,
        SimOptions {
            exec: Backend::Serial.into(),
            ..SimOptions::default()
        },
    )
}

fn problems() -> Vec<(&'static str, SpinPolynomial)> {
    let mut rng = StdRng::seed_from_u64(99);
    vec![
        ("labs-8", labs::labs_terms(8)),
        (
            "maxcut-3reg-10",
            maxcut::maxcut_polynomial(&Graph::random_regular(10, 3, &mut rng)),
        ),
        ("maxcut-weighted-7", {
            let g = Graph::complete(7, 1.0).with_random_weights(0.2, 1.8, &mut rng);
            maxcut::maxcut_polynomial(&g)
        }),
        (
            "portfolio-8",
            PortfolioInstance::random(8, 3, 0.6, &mut rng).to_terms(),
        ),
    ]
}

#[test]
fn fast_simulator_matches_gate_baseline_on_all_problems() {
    let gammas = [0.17, 0.31];
    let betas = [-0.62, -0.28];
    for (name, poly) in problems() {
        let fast = serial_fur(&poly);
        let fast_state = fast.simulate_qaoa(&gammas, &betas);
        for style in [PhaseStyle::DecomposedCx, PhaseStyle::NativeDiagonal] {
            let gate = GateSimulator::new(
                poly.clone(),
                GateSimOptions {
                    style,
                    mixer: CompiledMixer::X,
                    exec: Backend::Serial.into(),
                    fuse: false,
                },
            );
            let gate_state = gate.simulate_qaoa(&gammas, &betas);
            let diff = fast_state.state().max_abs_diff(&gate_state);
            assert!(diff < 1e-10, "{name} / {style:?}: max|Δψ| = {diff}");
            let de = (fast.get_expectation(&fast_state) - gate.expectation(&gate_state)).abs();
            assert!(de < 1e-9, "{name} / {style:?}: ΔE = {de}");
        }
    }
}

#[test]
fn fused_baseline_matches_unfused() {
    let poly = labs::labs_terms(9);
    let gammas = [0.21];
    let betas = [-0.55];
    let base = GateSimulator::new(
        poly.clone(),
        GateSimOptions {
            exec: Backend::Serial.into(),
            ..GateSimOptions::default()
        },
    );
    let fused = GateSimulator::new(
        poly,
        GateSimOptions {
            fuse: true,
            exec: Backend::Serial.into(),
            ..GateSimOptions::default()
        },
    );
    let a = base.simulate_qaoa(&gammas, &betas);
    let b = fused.simulate_qaoa(&gammas, &betas);
    assert!(a.max_abs_diff(&b) < 1e-10);
    assert!(fused.gates_per_layer() < base.gates_per_layer());
}

#[test]
fn distributed_matches_fast_simulator() {
    for (name, poly) in problems() {
        let n = poly.n_vars();
        let fast = serial_fur(&poly);
        let gammas = [0.4, 0.1];
        let betas = [-0.3, -0.7];
        let reference = fast.simulate_qaoa(&gammas, &betas);
        let max_ranks = 1usize << (n / 2).min(4);
        let dist = DistSimulator::new(poly.clone(), max_ranks).unwrap();
        let r = dist.simulate_qaoa(&gammas, &betas);
        assert!(
            r.state.max_abs_diff(reference.state()) < 1e-10,
            "{name} with K = {max_ranks}"
        );
        assert!((r.expectation - fast.get_expectation(&reference)).abs() < 1e-9);
        assert!((r.overlap - fast.get_overlap(&reference)).abs() < 1e-9);
    }
}

#[test]
fn tensornet_amplitudes_match_fast_simulator() {
    let poly = labs::labs_terms(7);
    let gammas = [0.25, 0.1];
    let betas = [-0.5, -0.2];
    let fast = serial_fur(&poly);
    let state = fast.simulate_qaoa(&gammas, &betas);
    for x in [0u64, 17, 64, 127] {
        let (amp, _) = qokit::tensornet::qaoa_amplitude(&poly, &gammas, &betas, x, 30).unwrap();
        let expect = state.state().amplitudes()[x as usize];
        assert!(amp.approx_eq(expect, 1e-9), "x = {x}: {amp} vs {expect}");
    }
}

#[test]
fn precompute_methods_agree_at_pipeline_level() {
    for (name, poly) in problems() {
        let a = FurSimulator::with_options(
            &poly,
            SimOptions {
                precompute: PrecomputeMethod::Direct,
                exec: Backend::Serial.into(),
                ..SimOptions::default()
            },
        );
        let b = FurSimulator::with_options(
            &poly,
            SimOptions {
                precompute: PrecomputeMethod::Fwht,
                exec: Backend::Serial.into(),
                ..SimOptions::default()
            },
        );
        let ra = a.simulate_qaoa(&[0.3], &[-0.4]);
        let rb = b.simulate_qaoa(&[0.3], &[-0.4]);
        assert!(ra.state().max_abs_diff(rb.state()) < 1e-9, "{name}");
    }
}

#[test]
fn quantized_pipeline_matches_f64_for_labs() {
    let poly = labs::labs_terms(10);
    let plain = serial_fur(&poly);
    let quant = FurSimulator::with_options(
        &poly,
        SimOptions {
            quantize_u16: true,
            exec: Backend::Serial.into(),
            ..SimOptions::default()
        },
    );
    assert!((quant.cost_diagonal().overhead_vs_state() - 0.125).abs() < 1e-12);
    let (g, b) = qokit::optim::schedules::linear_ramp(5, 0.4);
    let rp = plain.simulate_qaoa(&g, &b);
    let rq = quant.simulate_qaoa(&g, &b);
    assert!(rp.state().max_abs_diff(rq.state()) < 1e-9);
    assert!((plain.get_overlap(&rp) - quant.get_overlap(&rq)).abs() < 1e-9);
}

#[test]
fn xy_mixer_gate_baseline_matches_fast_simulator() {
    // XY-ring mixer through the gate path (U2 gates) vs the fast SU(4)
    // kernels, starting from the same Dicke state.
    let poly = maxcut::maxcut_polynomial(&Graph::ring(7, 1.0));
    let fast = FurSimulator::with_options(
        &poly,
        SimOptions {
            mixer: Mixer::XyRing,
            initial: InitialState::Dicke(3),
            exec: Backend::Serial.into(),
            ..SimOptions::default()
        },
    );
    let r = fast.simulate_qaoa(&[0.3], &[-0.8]);

    // Gate path: phase gates then compiled XY mixer, applied to the same
    // initial state.
    let mut state = StateVec::dicke_state(7, 3);
    for g in qokit::gates::compile_phase(&poly, 0.3, PhaseStyle::NativeDiagonal) {
        g.apply(state.amplitudes_mut(), Backend::Serial);
    }
    for g in qokit::gates::compile_mixer(7, -0.8, CompiledMixer::XyRing) {
        g.apply(state.amplitudes_mut(), Backend::Serial);
    }
    assert!(r.state().max_abs_diff(&state) < 1e-10);
}

#[test]
fn parallel_backend_full_pipeline_agrees() {
    let poly = labs::labs_terms(13);
    let serial = serial_fur(&poly);
    let parallel = FurSimulator::with_options(
        &poly,
        SimOptions {
            exec: Backend::Rayon.into(),
            ..SimOptions::default()
        },
    );
    let (g, b) = qokit::optim::schedules::linear_ramp(4, 0.35);
    let rs = serial.simulate_qaoa(&g, &b);
    let rp = parallel.simulate_qaoa(&g, &b);
    assert!(rs.state().max_abs_diff(rp.state()) < 1e-10);
    assert!((serial.get_expectation(&rs) - parallel.get_expectation(&rp)).abs() < 1e-9);
}
