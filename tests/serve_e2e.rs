//! End-to-end tests for the serving layer: an in-process server on real
//! loopback TCP, driven through `ServeClient`.
//!
//! The invariants pinned here:
//!
//! * a served job's result is **bit-for-bit** the one-shot API's result
//!   (sweep vs `SweepRunner`, multi-start vs `MultiStart::minimize`,
//!   light cone vs `LightConeEvaluator`);
//! * a repeated submission hits the precompute cache and returns the
//!   same bits;
//! * a saturated queue answers `Rejected` deterministically;
//! * deadlines and explicit cancels end a job with `Cancelled` and the
//!   lane stays serviceable;
//! * N concurrent clients see exactly the sequential results.

use qokit::core::batch::{SweepNesting, SweepOptions, SweepPoint, SweepRunner};
use qokit::core::{
    FurSimulator, InitialState, LandscapeAggregator, LightConeEvaluator, Mixer, SimOptions,
};
use qokit::dist::wire::SweepSimSpec;
use qokit::optim::{MultiStart, NelderMead, RestartMethod};
use qokit::prelude::*;
use qokit::serve::{ProgressAction, ServeClient};
use qokit::terms::maxcut::maxcut_polynomial;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn spec() -> SweepSimSpec {
    SweepSimSpec {
        precompute: PrecomputeMethod::Direct,
        quantize_u16: false,
        layout: Layout::Interleaved,
    }
}

fn test_poly(seed: u64) -> SpinPolynomial {
    let mut rng = StdRng::seed_from_u64(seed);
    maxcut_polynomial(&Graph::random_regular(10, 3, &mut rng))
}

fn sweep_job(poly: &SpinPolynomial) -> SweepJob {
    SweepJob {
        poly: poly.clone(),
        spec: spec(),
        grid: Grid2d::new(Axis::new(-0.5, 0.5, 8), Axis::new(-0.4, 0.4, 7)),
        top_k: 4,
        chunk: 8,
        deadline_ms: 0,
        progress_every: 0,
    }
}

fn oneshot_runner(poly: &SpinPolynomial) -> SweepRunner {
    let exec = ExecPolicy::serial().with_layout(spec().layout);
    let sim = FurSimulator::with_options(
        poly,
        SimOptions {
            mixer: Mixer::X,
            exec,
            precompute: spec().precompute,
            quantize_u16: spec().quantize_u16,
            initial: InitialState::Auto,
        },
    );
    SweepRunner::with_options(
        sim,
        SweepOptions {
            exec,
            nested: SweepNesting::PointsParallel,
        },
    )
}

fn oneshot_sweep(poly: &SpinPolynomial, job: &SweepJob) -> LandscapeAggregator {
    let mut agg = LandscapeAggregator::new(job.top_k);
    oneshot_runner(poly)
        .scan_into(
            (0..job.grid.len()).map(|i| job.grid.point(i)),
            job.chunk,
            &mut agg,
        )
        .expect("one-shot scan");
    agg
}

fn start_server(queue_capacity: usize) -> qokit::serve::ServerHandle {
    Server::bind(ServerConfig {
        queue_capacity,
        ..ServerConfig::default()
    })
    .expect("bind loopback listener")
    .spawn_thread()
    .expect("spawn server thread")
}

#[test]
fn served_sweep_is_bit_identical_to_oneshot() {
    let handle = start_server(4);
    let mut client = ServeClient::connect(handle.addr()).expect("connect");
    client.ping().expect("ping");

    let poly = test_poly(1);
    let job = sweep_job(&poly);
    let served = client
        .submit_sweep(&job, |_| ProgressAction::Continue)
        .expect("rpc")
        .done()
        .expect("job completed");
    let oracle = oneshot_sweep(&poly, &job);

    assert_eq!(served.evaluated, oracle.count());
    assert_eq!(served.sum.to_bits(), oracle.sum().to_bits());
    assert_eq!(
        served.min_energy.to_bits(),
        oracle.min_energy().unwrap().to_bits()
    );
    assert_eq!(served.argmin, oracle.argmin().unwrap());
    let oracle_top: Vec<(u64, u64)> = oracle
        .top_k()
        .iter()
        .map(|&(i, e)| (i, e.to_bits()))
        .collect();
    let served_top: Vec<(u64, u64)> = served
        .top_k
        .iter()
        .map(|&(i, e)| (i, e.to_bits()))
        .collect();
    assert_eq!(served_top, oracle_top);
    assert!(!served.cache_hit);

    client.shutdown_server().expect("shutdown");
    handle.join();
}

#[test]
fn served_multistart_is_bit_identical_to_oneshot() {
    let handle = start_server(4);
    let mut client = ServeClient::connect(handle.addr()).expect("connect");

    let poly = test_poly(2);
    let bounds = vec![(-0.5, 0.5), (-0.4, 0.4)];
    let served = client
        .submit_multistart(&MultiStartJob {
            poly: poly.clone(),
            spec: spec(),
            depth: 1,
            restarts: 3,
            seed: 17,
            bounds: bounds.clone(),
            deadline_ms: 0,
        })
        .expect("rpc")
        .done()
        .expect("job completed");

    let runner = oneshot_runner(&poly);
    let objective = |x: &[f64]| {
        let pt = SweepPoint::new(x[..1].to_vec(), x[1..].to_vec());
        runner.energies(std::slice::from_ref(&pt))[0]
    };
    let oracle = MultiStart {
        method: RestartMethod::NelderMead(NelderMead::default()),
        restarts: 3,
        seed: 17,
        bounds,
    }
    .minimize(&objective);

    assert_eq!(served.best_restart as usize, oracle.best_restart);
    assert_eq!(served.best_f.to_bits(), oracle.best().best_f.to_bits());
    assert_eq!(served.best_x.len(), oracle.best().best_x.len());
    for (a, b) in served.best_x.iter().zip(&oracle.best().best_x) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    let oracle_fs: Vec<u64> = oracle.restarts.iter().map(|r| r.best_f.to_bits()).collect();
    let served_fs: Vec<u64> = served.restart_best_fs.iter().map(|f| f.to_bits()).collect();
    assert_eq!(served_fs, oracle_fs);

    client.shutdown_server().expect("shutdown");
    handle.join();
}

#[test]
fn served_lightcone_is_bit_identical_to_oneshot() {
    let handle = start_server(4);
    let mut client = ServeClient::connect(handle.addr()).expect("connect");

    let mut rng = StdRng::seed_from_u64(3);
    let graph = Graph::random_regular(600, 3, &mut rng);
    let served = client
        .submit_lightcone(&LightConeJob {
            n_vertices: 600,
            edges: graph.edges().to_vec(),
            gammas: vec![0.4, -0.2],
            betas: vec![0.6, 0.3],
            max_cone_qubits: 22,
            deadline_ms: 0,
        })
        .expect("rpc")
        .done()
        .expect("job completed");

    let oracle = LightConeEvaluator::new(graph)
        .try_energy(&[0.4, -0.2], &[0.6, 0.3])
        .expect("one-shot light cone");
    assert_eq!(served.energy.to_bits(), oracle.energy.to_bits());
    assert_eq!(served.unique_cones as usize, oracle.stats.unique_cones);
    assert_eq!(served.cache_hits as usize, oracle.stats.cache_hits);

    client.shutdown_server().expect("shutdown");
    handle.join();
}

#[test]
fn second_identical_submission_hits_the_cache() {
    let handle = start_server(4);
    let mut client = ServeClient::connect(handle.addr()).expect("connect");

    let poly = test_poly(4);
    let job = sweep_job(&poly);
    let cold = client
        .submit_sweep(&job, |_| ProgressAction::Continue)
        .expect("rpc")
        .done()
        .expect("cold job");
    assert!(!cold.cache_hit);
    let warm = client
        .submit_sweep(&job, |_| ProgressAction::Continue)
        .expect("rpc")
        .done()
        .expect("warm job");
    assert!(
        warm.cache_hit,
        "identical problem + spec must hit the cache"
    );
    assert_eq!(warm.sum.to_bits(), cold.sum.to_bits());
    assert_eq!(warm.min_energy.to_bits(), cold.min_energy.to_bits());
    assert_eq!(warm.argmin, cold.argmin);

    let stats = client.cache_stats().expect("stats");
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.misses, 1);
    assert!(stats.hits >= 1);

    client.shutdown_server().expect("shutdown");
    handle.join();
}

/// A saturated capacity-1 server must refuse a second concurrent
/// submission with an explicit `Rejected` — not queue it, not hang.
#[test]
fn saturated_queue_rejects_deterministically() {
    let handle = start_server(1);
    let addr = handle.addr();

    let poly = test_poly(5);
    let slow = SweepJob {
        grid: Grid2d::new(Axis::new(-0.5, 0.5, 48), Axis::new(-0.4, 0.4, 48)),
        chunk: 1,
        progress_every: 1,
        ..sweep_job(&poly)
    };
    let a_started = Arc::new(AtomicBool::new(false));
    let b_decided = Arc::new(AtomicBool::new(false));
    let submitter = {
        let (a_started, b_decided) = (Arc::clone(&a_started), Arc::clone(&b_decided));
        let slow = slow.clone();
        std::thread::spawn(move || {
            let mut a = ServeClient::connect(addr).expect("connect A");
            a.submit_sweep(&slow, |_| {
                a_started.store(true, Ordering::Relaxed);
                if b_decided.load(Ordering::Relaxed) {
                    ProgressAction::Cancel
                } else {
                    ProgressAction::Continue
                }
            })
            .expect("rpc A")
        })
    };
    while !a_started.load(Ordering::Relaxed) {
        std::thread::yield_now();
    }

    let mut b = ServeClient::connect(addr).expect("connect B");
    match b
        .submit_sweep(&sweep_job(&poly), |_| ProgressAction::Continue)
        .expect("rpc B")
    {
        JobOutcome::Rejected {
            outstanding,
            capacity,
        } => {
            assert_eq!(outstanding, 1);
            assert_eq!(capacity, 1);
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    b_decided.store(true, Ordering::Relaxed);
    match submitter.join().expect("thread A") {
        JobOutcome::Cancelled { evaluated } => {
            assert!(
                evaluated < slow.grid.len(),
                "cancel must cut the sweep short"
            )
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }

    // The freed lane (and admission slot) must accept new work.
    let again = b
        .submit_sweep(&sweep_job(&poly), |_| ProgressAction::Continue)
        .expect("rpc after cancel")
        .done()
        .expect("lane stays serviceable");
    assert_eq!(
        again.min_energy.to_bits(),
        oneshot_sweep(&poly, &sweep_job(&poly))
            .min_energy()
            .unwrap()
            .to_bits()
    );

    b.shutdown_server().expect("shutdown");
    handle.join();
}

/// An expired deadline ends the job with `Cancelled` at the next chunk
/// boundary and the server keeps serving.
#[test]
fn deadline_expiry_cancels_and_server_stays_usable() {
    let handle = start_server(2);
    let mut client = ServeClient::connect(handle.addr()).expect("connect");

    let poly = test_poly(6);
    let doomed = SweepJob {
        grid: Grid2d::new(Axis::new(-0.5, 0.5, 64), Axis::new(-0.4, 0.4, 64)),
        chunk: 1,
        deadline_ms: 1,
        ..sweep_job(&poly)
    };
    match client
        .submit_sweep(&doomed, |_| ProgressAction::Continue)
        .expect("rpc")
    {
        JobOutcome::Cancelled { evaluated } => {
            assert!(
                evaluated < doomed.grid.len(),
                "deadline must cut the sweep short"
            )
        }
        JobOutcome::Done(_) => panic!("a 1ms deadline cannot cover a 4096-point sweep"),
        other => panic!("expected Cancelled, got {other:?}"),
    }

    let ok = client
        .submit_sweep(&sweep_job(&poly), |_| ProgressAction::Continue)
        .expect("rpc")
        .done()
        .expect("server stays usable after a deadline kill");
    assert_eq!(ok.evaluated, sweep_job(&poly).grid.len());

    client.shutdown_server().expect("shutdown");
    handle.join();
}

/// Four clients with four distinct problems, concurrently, against a
/// multi-lane server: every result must be bit-for-bit the sequential
/// one-shot result for its own problem.
#[test]
fn concurrent_clients_match_sequential_bit_for_bit() {
    let handle = start_server(8);
    let addr = handle.addr();

    let polys: Vec<SpinPolynomial> = (10..14).map(test_poly).collect();
    let threads: Vec<_> = polys
        .iter()
        .map(|poly| {
            let job = sweep_job(poly);
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                client
                    .submit_sweep(&job, |_| ProgressAction::Continue)
                    .expect("rpc")
                    .done()
                    .expect("job completed")
            })
        })
        .collect();
    let served: Vec<_> = threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();

    for (poly, served) in polys.iter().zip(&served) {
        let oracle = oneshot_sweep(poly, &sweep_job(poly));
        assert_eq!(served.sum.to_bits(), oracle.sum().to_bits());
        assert_eq!(
            served.min_energy.to_bits(),
            oracle.min_energy().unwrap().to_bits()
        );
        assert_eq!(served.argmin, oracle.argmin().unwrap());
    }

    let mut client = ServeClient::connect(addr).expect("connect");
    client.shutdown_server().expect("shutdown");
    handle.join();
}
