//! Property-based tests over the whole stack: random cost polynomials,
//! random parameters, random circuits — the invariants the paper's
//! algorithms must satisfy for *every* input, not just the benchmarked
//! ones.

use proptest::prelude::*;
use qokit::gates::{GateSimOptions, GateSimulator, PhaseStyle};
use qokit::prelude::*;
use qokit::statevec::su2::apply_uniform_mat2;
use qokit::statevec::Mat2;

/// Strategy: a random spin polynomial on `n` variables.
fn poly_strategy(n: usize, max_terms: usize) -> impl Strategy<Value = SpinPolynomial> {
    prop::collection::vec(
        (
            -2.0f64..2.0,
            prop::bits::u64::between(0, n).prop_map(move |m| m & ((1u64 << n) - 1)),
        ),
        1..max_terms,
    )
    .prop_map(move |pairs| {
        SpinPolynomial::new(
            n,
            pairs
                .into_iter()
                .map(|(w, m)| Term::from_mask(w, m))
                .collect(),
        )
    })
}

/// Strategy: QAOA parameters of random depth 1..=3.
fn params_strategy() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (1usize..=3).prop_flat_map(|p| {
        (
            prop::collection::vec(-1.0f64..1.0, p),
            prop::collection::vec(-1.0f64..1.0, p),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn precompute_methods_always_agree(poly in poly_strategy(8, 24)) {
        let direct = qokit::costvec::precompute_direct(&poly, Backend::Serial);
        let fwht = qokit::costvec::precompute_fwht(&poly, Backend::Serial);
        for (i, (a, b)) in direct.iter().zip(fwht.iter()).enumerate() {
            prop_assert!((a - b).abs() < 1e-9, "index {i}: {a} vs {b}");
        }
        // And both match pointwise evaluation.
        for x in [0u64, 1, 100, 255] {
            prop_assert!((direct[x as usize] - poly.evaluate_bits(x)).abs() < 1e-9);
        }
    }

    #[test]
    fn qaoa_preserves_norm((g, b) in params_strategy(), poly in poly_strategy(7, 16)) {
        let sim = FurSimulator::with_options(&poly, SimOptions {
            exec: Backend::Serial.into(), ..SimOptions::default()
        });
        let r = sim.simulate_qaoa(&g, &b);
        prop_assert!((r.state().norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expectation_lies_within_cost_extrema((g, b) in params_strategy(), poly in poly_strategy(7, 16)) {
        let sim = FurSimulator::with_options(&poly, SimOptions {
            exec: Backend::Serial.into(), ..SimOptions::default()
        });
        let (lo, hi) = sim.cost_diagonal().extrema();
        let e = sim.objective(&g, &b);
        prop_assert!(e >= lo - 1e-9 && e <= hi + 1e-9, "E = {e} outside [{lo}, {hi}]");
    }

    #[test]
    fn overlap_is_a_probability((g, b) in params_strategy(), poly in poly_strategy(6, 12)) {
        let sim = FurSimulator::with_options(&poly, SimOptions {
            exec: Backend::Serial.into(), ..SimOptions::default()
        });
        let r = sim.simulate_qaoa(&g, &b);
        let ov = sim.get_overlap(&r);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&ov));
    }

    #[test]
    fn gate_baseline_equals_fast_simulator((g, b) in params_strategy(), poly in poly_strategy(6, 10)) {
        let fast = FurSimulator::with_options(&poly, SimOptions {
            exec: Backend::Serial.into(), ..SimOptions::default()
        });
        let gate = GateSimulator::new(poly.clone(), GateSimOptions {
            exec: Backend::Serial.into(),
            style: PhaseStyle::DecomposedCx,
            ..GateSimOptions::default()
        });
        let a = fast.simulate_qaoa(&g, &b);
        let s = gate.simulate_qaoa(&g, &b);
        prop_assert!(a.state().max_abs_diff(&s) < 1e-9);
    }

    #[test]
    fn mixer_inverse_round_trips(beta in -2.0f64..2.0) {
        let mut s = StateVec::uniform_superposition(8);
        let orig = s.clone();
        apply_uniform_mat2(s.amplitudes_mut(), &Mat2::rx(beta), Backend::Serial);
        apply_uniform_mat2(s.amplitudes_mut(), &Mat2::rx(-beta), Backend::Serial);
        prop_assert!(s.max_abs_diff(&orig) < 1e-9);
    }

    #[test]
    fn phase_operator_commutes_with_itself(
        poly in poly_strategy(6, 10),
        g1 in -1.0f64..1.0,
        g2 in -1.0f64..1.0,
    ) {
        // Diagonal operators commute: applying (γ1 then γ2) equals (γ2
        // then γ1) equals (γ1+γ2).
        let costs = CostVec::from_polynomial(&poly, PrecomputeMethod::Fwht, Backend::Serial);
        let mut a = StateVec::uniform_superposition(6);
        let mut b = a.clone();
        let mut c = a.clone();
        costs.apply_phase(a.amplitudes_mut(), g1, Backend::Serial);
        costs.apply_phase(a.amplitudes_mut(), g2, Backend::Serial);
        costs.apply_phase(b.amplitudes_mut(), g2, Backend::Serial);
        costs.apply_phase(b.amplitudes_mut(), g1, Backend::Serial);
        costs.apply_phase(c.amplitudes_mut(), g1 + g2, Backend::Serial);
        prop_assert!(a.max_abs_diff(&b) < 1e-10);
        prop_assert!(a.max_abs_diff(&c) < 1e-10);
    }

    #[test]
    fn xy_mixers_conserve_weight_for_any_angles(
        betas in prop::collection::vec(-2.0f64..2.0, 1..4),
        k in 1usize..5,
    ) {
        let n = 6;
        let mut s = StateVec::dicke_state(n, k);
        for &b in &betas {
            Mixer::XyRing.apply(s.amplitudes_mut(), b, Backend::Serial);
            Mixer::XyComplete.apply(s.amplitudes_mut(), b, Backend::Serial);
        }
        let mass: f64 = s.amplitudes().iter().enumerate()
            .filter(|(x, _)| x.count_ones() as usize == k)
            .map(|(_, a)| a.norm_sqr())
            .sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fusion_never_changes_the_circuit(
        poly in poly_strategy(5, 8),
        gamma in -1.0f64..1.0,
        beta in -1.0f64..1.0,
    ) {
        let mut gates = qokit::gates::compile_phase(&poly, gamma, PhaseStyle::DecomposedCx);
        gates.extend(qokit::gates::compile_mixer(5, beta, qokit::gates::CompiledMixer::X));
        let fused = qokit::gates::fuse_2q(&gates);
        let mut a = StateVec::uniform_superposition(5);
        let mut b = a.clone();
        for g in &gates { g.apply(a.amplitudes_mut(), Backend::Serial); }
        for g in &fused { g.apply(b.amplitudes_mut(), Backend::Serial); }
        prop_assert!(a.max_abs_diff(&b) < 1e-9);
    }

    #[test]
    fn peephole_never_changes_the_circuit(
        poly in poly_strategy(5, 8),
        gamma in -1.0f64..1.0,
    ) {
        let gates = qokit::gates::compile_phase(&poly, gamma, PhaseStyle::DecomposedCx);
        let cancelled = qokit::gates::compile::peephole_cancel(&gates);
        let mut a = StateVec::uniform_superposition(5);
        let mut b = a.clone();
        for g in &gates { g.apply(a.amplitudes_mut(), Backend::Serial); }
        for g in &cancelled { g.apply(b.amplitudes_mut(), Backend::Serial); }
        prop_assert!(a.max_abs_diff(&b) < 1e-9);
        prop_assert!(cancelled.len() <= gates.len());
    }

    #[test]
    fn quantization_exactness_for_integer_costs(poly in poly_strategy(6, 10)) {
        // Round every weight to an integer: the cost vector becomes
        // integral and must quantize exactly (if it fits u16).
        let int_poly = SpinPolynomial::new(
            6,
            poly.terms().iter().map(|t| Term::from_mask(t.weight.round(), t.mask)).collect(),
        );
        let costs = qokit::costvec::precompute_fwht(&int_poly, Backend::Serial);
        if let Ok(q) = CostVec::quantize_exact(&costs, 1.0) {
            for (x, &v) in costs.iter().enumerate() {
                prop_assert_eq!(q.value(x), v);
            }
        }
    }

    #[test]
    fn distributed_equals_single_node(
        poly in poly_strategy(8, 12),
        ranks_log in 0usize..=3,
    ) {
        let ranks = 1usize << ranks_log;
        let fast = FurSimulator::with_options(&poly, SimOptions {
            exec: Backend::Serial.into(), ..SimOptions::default()
        });
        let reference = fast.simulate_qaoa(&[0.3], &[-0.6]);
        let dist = qokit::dist::DistSimulator::new(poly.clone(), ranks).unwrap();
        let r = dist.simulate_qaoa(&[0.3], &[-0.6]);
        prop_assert!(r.state.max_abs_diff(reference.state()) < 1e-9);
    }
}
