//! Property-based Serial-vs-Rayon equivalence across the kernel stack.
//!
//! The whole architecture rests on one claim: the parallel kernels compute
//! the *same function* as their serial twins — only the executor differs.
//! These properties pin it down for random inputs and random sizes, with a
//! forced-parallel [`ExecPolicy`] (`min_len = 1`, tiny `min_chunk`) so the
//! parallel code paths genuinely engage even on small vectors and 1-core
//! CI machines.
//!
//! Elementwise kernels (phase, SU(2), SU(4), FWHT butterflies) must agree
//! to ≤1e-12 per amplitude (they are in fact bit-identical: the split only
//! partitions the index space). Reductions (energies) may differ by
//! floating-point association, bounded far below 1e-12 at these sizes.

use proptest::prelude::*;
use qokit::costvec::PrecomputeMethod;
use qokit::prelude::*;
use qokit::statevec::fwht::{fwht, fwht_f64};
use qokit::statevec::su2::apply_mat2;
use qokit::statevec::su4::{apply_mat4, apply_xy};
use qokit::statevec::{Mat2, Mat4};

/// The forced-parallel policy: every sweep takes the pool path.
fn forced() -> ExecPolicy {
    ExecPolicy::rayon().with_min_len(1).with_min_chunk(4)
}

/// Strategy: a normalized random state on `n` qubits, `n` drawn from range.
fn state_strategy(n_range: std::ops::RangeInclusive<usize>) -> impl Strategy<Value = StateVec> {
    n_range.prop_flat_map(|n| {
        prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1 << n).prop_map(|pairs| {
            let mut s = StateVec::from_amplitudes(
                pairs.into_iter().map(|(re, im)| C64::new(re, im)).collect(),
            );
            s.normalize();
            s
        })
    })
}

/// Strategy: a random spin polynomial on `n` variables.
fn poly_strategy(n: usize, max_terms: usize) -> impl Strategy<Value = SpinPolynomial> {
    prop::collection::vec(
        (
            -2.0f64..2.0,
            prop::bits::u64::between(0, n).prop_map(move |m| m & ((1u64 << n) - 1)),
        ),
        1..max_terms,
    )
    .prop_map(move |pairs| {
        SpinPolynomial::new(
            n,
            pairs
                .into_iter()
                .map(|(w, m)| Term::from_mask(w, m))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fwht_backends_agree(state in state_strategy(2..=11)) {
        let mut a = state.clone();
        let mut b = state;
        fwht(a.amplitudes_mut(), Backend::Serial);
        fwht(b.amplitudes_mut(), forced());
        prop_assert!(a.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn fwht_f64_backends_agree(vals in prop::collection::vec(-1.0f64..1.0, 256)) {
        let mut a = vals.clone();
        let mut b = vals;
        fwht_f64(&mut a, Backend::Serial);
        fwht_f64(&mut b, forced());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn su2_backends_agree(state in state_strategy(2..=10), theta in -3.0f64..3.0) {
        let n = state.n_qubits();
        let u = Mat2::rx(theta).matmul(&Mat2::rz(theta * 0.5));
        for q in 0..n {
            let mut a = state.clone();
            let mut b = state.clone();
            apply_mat2(a.amplitudes_mut(), q, &u, Backend::Serial);
            apply_mat2(b.amplitudes_mut(), q, &u, forced());
            prop_assert!(a.max_abs_diff(&b) < 1e-12, "qubit {q}");
        }
    }

    #[test]
    fn su4_backends_agree(state in state_strategy(3..=9), theta in -3.0f64..3.0) {
        let n = state.n_qubits();
        let u = Mat4::xx_plus_yy(theta).matmul(&Mat4::rzz(theta * 0.3));
        for (qa, qb) in [(0, 1), (0, n - 1), (n / 2, n - 1), (n - 1, 0)] {
            if qa == qb {
                continue;
            }
            let mut a = state.clone();
            let mut b = state.clone();
            apply_mat4(a.amplitudes_mut(), qa, qb, &u, Backend::Serial);
            apply_mat4(b.amplitudes_mut(), qa, qb, &u, forced());
            prop_assert!(a.max_abs_diff(&b) < 1e-12, "pair ({qa},{qb})");

            let mut c = state.clone();
            let mut d = state.clone();
            apply_xy(c.amplitudes_mut(), qa, qb, theta, Backend::Serial);
            apply_xy(d.amplitudes_mut(), qa, qb, theta, forced());
            prop_assert!(c.max_abs_diff(&d) < 1e-12, "xy pair ({qa},{qb})");
        }
    }

    #[test]
    fn diag_backends_agree(state in state_strategy(4..=11), gamma in -2.0f64..2.0) {
        let costs: Vec<f64> = (0..state.dim()).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
        let mut a = state.clone();
        let mut b = state.clone();
        qokit::statevec::diag::apply_phase(a.amplitudes_mut(), &costs, gamma, Backend::Serial);
        qokit::statevec::diag::apply_phase(b.amplitudes_mut(), &costs, gamma, forced());
        prop_assert!(a.max_abs_diff(&b) < 1e-12);

        let e_s = qokit::statevec::diag::expectation(a.amplitudes(), &costs, Backend::Serial);
        let e_p = qokit::statevec::diag::expectation(b.amplitudes(), &costs, forced());
        prop_assert!((e_s - e_p).abs() < 1e-12, "{e_s} vs {e_p}");
    }

    #[test]
    fn precompute_backends_agree(poly in poly_strategy(9, 24)) {
        let s = qokit::costvec::precompute_direct(&poly, Backend::Serial);
        let p = qokit::costvec::precompute_direct(&poly, forced());
        prop_assert!(s == p, "direct precompute must be bit-identical");
        let sf = qokit::costvec::precompute_fwht(&poly, Backend::Serial);
        let pf = qokit::costvec::precompute_fwht(&poly, forced());
        for (a, b) in sf.iter().zip(pf.iter()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn full_simulator_backends_agree(
        poly in poly_strategy(8, 20),
        gammas in prop::collection::vec(-1.0f64..1.0, 3),
        betas in prop::collection::vec(-1.0f64..1.0, 3),
    ) {
        for mixer in [Mixer::X, Mixer::XyRing] {
            let serial = FurSimulator::with_options(&poly, SimOptions {
                mixer,
                exec: ExecPolicy::serial(),
                ..SimOptions::default()
            });
            let parallel = FurSimulator::with_options(&poly, SimOptions {
                mixer,
                exec: forced(),
                ..SimOptions::default()
            });
            let rs = serial.simulate_qaoa(&gammas, &betas);
            let rp = parallel.simulate_qaoa(&gammas, &betas);
            prop_assert!(
                rs.state().max_abs_diff(rp.state()) < 1e-12,
                "{mixer:?}: states diverged"
            );
            let es = serial.get_expectation(&rs);
            let ep = parallel.get_expectation(&rp);
            prop_assert!((es - ep).abs() < 1e-12, "{mixer:?}: {es} vs {ep}");
            prop_assert!((serial.get_overlap(&rs) - parallel.get_overlap(&rp)).abs() < 1e-12);
        }
    }

    #[test]
    fn quantized_simulator_backends_agree(
        gammas in prop::collection::vec(-1.0f64..1.0, 2),
        betas in prop::collection::vec(-1.0f64..1.0, 2),
    ) {
        // LABS has an integer cost grid, so the u16 path is exact.
        let poly = qokit::terms::labs::labs_terms(9);
        let serial = FurSimulator::with_options(&poly, SimOptions {
            quantize_u16: true,
            exec: ExecPolicy::serial(),
            ..SimOptions::default()
        });
        let parallel = FurSimulator::with_options(&poly, SimOptions {
            quantize_u16: true,
            exec: forced(),
            ..SimOptions::default()
        });
        let rs = serial.simulate_qaoa(&gammas, &betas);
        let rp = parallel.simulate_qaoa(&gammas, &betas);
        prop_assert!(rs.state().max_abs_diff(rp.state()) < 1e-12);
        prop_assert!((serial.get_expectation(&rs) - parallel.get_expectation(&rp)).abs() < 1e-12);
    }
}

/// Deterministic (non-property) check that an explicitly-sized policy pool
/// reproduces ambient-pool results, end to end.
#[test]
fn explicit_thread_counts_agree_end_to_end() {
    let poly = qokit::terms::labs::labs_terms(10);
    let (g, b) = ([0.21, 0.48], [0.9, 0.36]);
    let reference = FurSimulator::with_options(
        &poly,
        SimOptions {
            exec: ExecPolicy::serial(),
            ..SimOptions::default()
        },
    )
    .simulate_qaoa(&g, &b);
    for threads in [1usize, 2, 4] {
        let sim = FurSimulator::with_options(
            &poly,
            SimOptions {
                exec: ExecPolicy::rayon()
                    .with_threads(threads)
                    .with_min_len(1)
                    .with_min_chunk(8),
                ..SimOptions::default()
            },
        );
        let r = sim.simulate_qaoa(&g, &b);
        assert!(
            reference.state().max_abs_diff(r.state()) < 1e-12,
            "threads = {threads}"
        );
    }
}

/// CostVec-level equivalence across representations and backends.
#[test]
fn costvec_phase_and_energy_backends_agree() {
    let poly = qokit::terms::labs::labs_terms(11);
    let cv = CostVec::from_polynomial(&poly, PrecomputeMethod::Fwht, Backend::Serial);
    let q = CostVec::quantize_exact(&cv.to_f64_vec(), 1.0).expect("LABS costs are integral");
    let forced = ExecPolicy::rayon().with_min_len(1).with_min_chunk(64);
    for costs in [&cv, &q] {
        let mut a = StateVec::uniform_superposition(11);
        let mut b = a.clone();
        costs.apply_phase(a.amplitudes_mut(), 0.37, Backend::Serial);
        costs.apply_phase(b.amplitudes_mut(), 0.37, forced);
        assert!(a.max_abs_diff(&b) < 1e-12);
        let es = costs.expectation(a.amplitudes(), Backend::Serial);
        let ep = costs.expectation(b.amplitudes(), forced);
        assert!((es - ep).abs() < 1e-10, "{es} vs {ep}");
    }
}
