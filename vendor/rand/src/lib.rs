//! # rand (offline shim)
//!
//! A minimal, dependency-free stand-in for the `rand` crate, vendored so the
//! qokit workspace builds without network access. It implements exactly the
//! surface the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64, exposing [`SeedableRng::seed_from_u64`].
//! * [`Rng`] — `gen`, `gen_bool`, and `gen_range` over integer and float
//!   ranges (rejection sampling keeps integer draws unbiased).
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! The streams are *not* bit-compatible with crates.io `rand`; they are
//! deterministic per seed, which is what the tests and benchmarks rely on.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.gen_range(0usize..10);
//! assert!(k < 10);
//! ```

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words. Supertrait of [`Rng`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only the `seed_from_u64` constructor is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, `bool` fair coin, integers uniform).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Uniform below `n` (`n > 0`) without modulo bias, via rejection sampling.
fn gen_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let x = self.start + f64::sample_standard(rng) * (self.end - self.start);
        // lo + u*(hi-lo) can round up to exactly `hi`; keep the range half-open.
        if x < self.end {
            x
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty f32 range");
        let x = self.start + f32::sample_standard(rng) * (self.end - self.start);
        if x < self.end {
            x
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + gen_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every word is a valid draw.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + gen_u64_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded through SplitMix64 exactly as the xoshiro authors recommend.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (`shuffle`).
pub mod seq {
    use super::{gen_u64_below, RngCore};

    /// Slice extension trait providing an in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Shuffles the slice in place, uniformly over permutations.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = gen_u64_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u = rng.gen_range(0u64..37);
            assert!(u < 37);
            let i = rng.gen_range(0usize..=5);
            assert!(i <= 5);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
