//! Strided lane fan-out over sibling [`SubsetPool`]s.
//!
//! Several qokit drivers share one scheduling shape: `n_items` independent
//! tasks spread over `lanes` disjoint worker subsets, lane `l` owning items
//! `l, l + lanes, l + 2·lanes, …`, with results collected **keyed by item
//! index** regardless of lane assignment or completion order. Batched
//! parameter sweeps (point×kernel nesting), multi-start optimizer lanes,
//! distributed scan ranks, and light-cone edge batches all used to hand-roll
//! it; [`strided_lanes`] is the one shared implementation.

use crate::registry::{scope, split_current};
use std::sync::Mutex;

/// Runs `body(0..n_items)` across `lanes` sibling worker subsets and returns
/// the results keyed by item index (slot `i` holds `body(i)`).
///
/// Lane `l` owns the strided share `l, l + lanes, …` and executes it inside
/// its own [`SubsetPool`](crate::SubsetPool) of `workers_per_lane` workers
/// (`install`ed once per lane, not once per item), so sibling lanes run
/// concurrently without stealing each other's inner work. Shapes are clamped
/// to the current context: `lanes` to `min(width, n_items)` and
/// `workers_per_lane` to `width / lanes`, where `width` is
/// [`current_num_threads`](crate::current_num_threads) at the call site.
/// `workers_per_lane == 0` requests the even share `width / lanes`. Leftover
/// workers (when `lanes · workers_per_lane < width`) help by stealing the
/// lane tasks themselves.
///
/// With a single lane (one worker, one item, or `lanes <= 1` after clamping)
/// the items run as a plain sequential loop in the calling context, so inner
/// parallelism keeps the full ambient width — the degenerate case callers
/// previously special-cased by hand.
///
/// # Determinism
///
/// The item→lane assignment is a pure function of `n_items` and the clamped
/// `lanes`, and results are merged by index — so any `body` whose per-item
/// output does not depend on where it runs yields identical `Vec`s for every
/// pool size.
///
/// # Panics
///
/// A panic in `body` propagates to the caller after the lanes drain (the
/// scope's barrier); remaining items of the panicking lane are abandoned.
/// Callers needing per-item containment wrap `body` in
/// `panic::catch_unwind` and return a `Result` — index-keyed slots make the
/// poisoned item identifiable.
///
/// ```
/// let squares = rayon::strided_lanes(8, 4, 0, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn strided_lanes<R, F>(n_items: usize, lanes: usize, workers_per_lane: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let width = crate::current_num_threads().max(1);
    let lanes = lanes.clamp(1, width.min(n_items.max(1)));
    let even_share = (width / lanes).max(1);
    let workers_per_lane = if workers_per_lane == 0 {
        even_share
    } else {
        workers_per_lane.clamp(1, even_share)
    };
    if lanes <= 1 {
        // One lane owning every worker: a sequential item loop whose inner
        // work still sees the full ambient width.
        return (0..n_items).map(body).collect();
    }
    let subsets = split_current(&vec![workers_per_lane; lanes]);
    // One (item index, result) accumulator per lane, merged by index below.
    let lane_outputs: Vec<Mutex<Vec<(usize, R)>>> =
        (0..lanes).map(|_| Mutex::new(Vec::new())).collect();
    scope(|s| {
        for (lane, subset) in subsets.iter().enumerate() {
            let out = &lane_outputs[lane];
            let body = &body;
            s.spawn(move |_| {
                subset.install(|| {
                    for index in (lane..n_items).step_by(lanes) {
                        let result = body(index);
                        out.lock().unwrap().push((index, result));
                    }
                });
            });
        }
    });
    let mut slots: Vec<Option<R>> = (0..n_items).map(|_| None).collect();
    for out in lane_outputs {
        for (index, result) in out.into_inner().unwrap() {
            slots[index] = Some(result);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every item runs exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_index_keyed() {
        let out = strided_lanes(37, 4, 1, |i| 3 * i + 1);
        assert_eq!(out.len(), 37);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 3 * i + 1);
        }
    }

    #[test]
    fn zero_items_yield_empty_vec() {
        let out: Vec<usize> = strided_lanes(0, 4, 2, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let out = strided_lanes(1, 8, 0, |i| i + 41);
        assert_eq!(out, vec![41]);
    }

    #[test]
    fn oversized_shapes_are_clamped() {
        // More lanes than the pool has workers, absurd per-lane width:
        // every item must still run exactly once.
        let out = strided_lanes(11, usize::MAX, usize::MAX, |i| i);
        assert_eq!(out, (0..11).collect::<Vec<_>>());
    }
}
