//! Parallel iterators over slices, with the adapter surface the qokit
//! kernels use: `zip`, `enumerate`, `map`, `with_min_len`, and the
//! `for_each` / `sum` / `reduce` / `collect` terminals.
//!
//! # Model
//!
//! Every chain bottoms out in a slice, so every iterator here is *indexed*:
//! it knows its length and can produce the item at any index independently.
//! Terminal operations split the index range `[0, len)` recursively with
//! [`crate::join`] — honoring the `with_min_len` floor — and drain each leaf
//! range sequentially. Splitting is by index arithmetic only, so results and
//! work decomposition are deterministic for a given pool size; which worker
//! executes which leaf is decided by work stealing at runtime.
//!
//! Mutable iterators hand out `&mut` references produced from raw pointers.
//! This is sound because the engine visits every index exactly once and
//! disjoint indices alias nothing.

use crate::registry::effective_parallelism;

/// How many splittable pieces to create per worker thread: slack for the
/// work-stealing scheduler to balance uneven leaves.
const SPLITS_PER_THREAD: usize = 4;

/// Raw-pointer wrapper that crosses thread boundaries. Safety rests on the
/// exactly-once index contract above.
struct SendPtr<T>(*mut T);

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// ---------------------------------------------------------------- engine

/// Runs `body` over `[0, len)` in parallel pieces of at least `min_len`.
pub(crate) fn parallel_for(len: usize, min_len: usize, body: &(dyn Fn(usize, usize) + Sync)) {
    if len == 0 {
        return;
    }
    let min_len = min_len.max(1);
    let threads = effective_parallelism();
    if threads <= 1 || len < 2 * min_len {
        body(0, len);
        return;
    }
    let splits = (threads * SPLITS_PER_THREAD).next_power_of_two();
    split_for(0, len, min_len, splits, body);
}

fn split_for(
    lo: usize,
    hi: usize,
    min_len: usize,
    splits: usize,
    body: &(dyn Fn(usize, usize) + Sync),
) {
    if splits <= 1 || hi - lo < 2 * min_len {
        body(lo, hi);
        return;
    }
    let mid = lo + (hi - lo) / 2;
    crate::join(
        || split_for(lo, mid, min_len, splits / 2, body),
        || split_for(mid, hi, min_len, splits / 2, body),
    );
}

/// Parallel reduction over `[0, len)`: `leaf` folds a range sequentially,
/// `combine` merges two partial results. Combination order follows the
/// (deterministic) split tree.
pub(crate) fn parallel_reduce<R: Send>(
    len: usize,
    min_len: usize,
    leaf: &(dyn Fn(usize, usize) -> R + Sync),
    combine: &(dyn Fn(R, R) -> R + Sync),
) -> R {
    let min_len = min_len.max(1);
    let threads = effective_parallelism();
    if threads <= 1 || len < 2 * min_len {
        return leaf(0, len);
    }
    let splits = (threads * SPLITS_PER_THREAD).next_power_of_two();
    split_reduce(0, len, min_len, splits, leaf, combine)
}

fn split_reduce<R: Send>(
    lo: usize,
    hi: usize,
    min_len: usize,
    splits: usize,
    leaf: &(dyn Fn(usize, usize) -> R + Sync),
    combine: &(dyn Fn(R, R) -> R + Sync),
) -> R {
    if splits <= 1 || hi - lo < 2 * min_len {
        return leaf(lo, hi);
    }
    let mid = lo + (hi - lo) / 2;
    let (left, right) = crate::join(
        || split_reduce(lo, mid, min_len, splits / 2, leaf, combine),
        || split_reduce(mid, hi, min_len, splits / 2, leaf, combine),
    );
    combine(left, right)
}

// ---------------------------------------------------------------- trait

/// An indexed parallel iterator. Mirrors the slice-relevant subset of
/// rayon's `ParallelIterator`/`IndexedParallelIterator` in one trait.
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;

    #[doc(hidden)]
    fn pi_len(&self) -> usize;

    #[doc(hidden)]
    fn pi_min_len(&self) -> usize;

    #[doc(hidden)]
    fn pi_set_min_len(&mut self, min_len: usize);

    /// # Safety
    /// `index < pi_len()`, and the engine calls each index at most once per
    /// traversal (mutable sources rely on this for aliasing soundness).
    #[doc(hidden)]
    unsafe fn pi_get(&self, index: usize) -> Self::Item;

    /// Sets the minimum number of items a parallel task may own.
    fn with_min_len(mut self, min_len: usize) -> Self {
        self.pi_set_min_len(min_len.max(1));
        self
    }

    /// Granularity ceiling — accepted for rayon API compatibility; the
    /// engine splits by thread count and `with_min_len` only.
    fn with_max_len(self, _max_len: usize) -> Self {
        self
    }

    /// Pairs this iterator's items with `other`'s, index by index
    /// (truncating to the shorter length).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Attaches each item's index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Maps each item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Consumes every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
        Self: Sync,
    {
        parallel_for(self.pi_len(), self.pi_min_len(), &|lo, hi| {
            for i in lo..hi {
                f(unsafe { self.pi_get(i) });
            }
        });
    }

    /// Parallel sum. Floating-point partial sums associate along the
    /// deterministic split tree, so results are reproducible for a given
    /// pool size (though not bit-identical to the sequential order).
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
        Self: Sync,
    {
        parallel_reduce(
            self.pi_len(),
            self.pi_min_len(),
            &|lo, hi| (lo..hi).map(|i| unsafe { self.pi_get(i) }).sum::<S>(),
            &|a, b| [a, b].into_iter().sum(),
        )
    }

    /// Parallel reduction with an identity element.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
        Self: Sync,
    {
        parallel_reduce(
            self.pi_len(),
            self.pi_min_len(),
            &|lo, hi| {
                (lo..hi)
                    .map(|i| unsafe { self.pi_get(i) })
                    .fold(identity(), &op)
            },
            &|a, b| op(a, b),
        )
    }

    /// Collects into `C` (Vec is supported), writing items to their final
    /// positions in parallel.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
        Self: Sync,
    {
        C::from_par_iter(self)
    }
}

/// Collection types constructible from a parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds `Self`, consuming the iterator in parallel.
    fn from_par_iter<I>(iter: I) -> Self
    where
        I: ParallelIterator<Item = T> + Sync;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I>(iter: I) -> Vec<T>
    where
        I: ParallelIterator<Item = T> + Sync,
    {
        let len = iter.pi_len();
        let mut out: Vec<T> = Vec::with_capacity(len);
        let base = SendPtr(out.as_mut_ptr());
        parallel_for(len, iter.pi_min_len(), &|lo, hi| {
            // Copy the whole wrapper so the closure captures `SendPtr<T>`
            // (Sync) rather than the raw pointer field.
            let dst = base;
            for i in lo..hi {
                // SAFETY: disjoint ranges write disjoint cells within
                // capacity; `set_len` below happens only after all writes.
                unsafe { dst.0.add(i).write(iter.pi_get(i)) };
            }
        });
        // SAFETY: all `len` cells were initialized above.
        unsafe { out.set_len(len) };
        out
    }
}

// ---------------------------------------------------------------- sources

/// Shared parallel iterator over a slice (`par_iter`).
pub struct Iter<'data, T> {
    ptr: *const T,
    len: usize,
    min_len: usize,
    marker: std::marker::PhantomData<&'data [T]>,
}

unsafe impl<T: Sync> Send for Iter<'_, T> {}
unsafe impl<T: Sync> Sync for Iter<'_, T> {}

impl<'data, T: Sync> ParallelIterator for Iter<'data, T> {
    type Item = &'data T;
    fn pi_len(&self) -> usize {
        self.len
    }
    fn pi_min_len(&self) -> usize {
        self.min_len
    }
    fn pi_set_min_len(&mut self, min_len: usize) {
        self.min_len = min_len;
    }
    unsafe fn pi_get(&self, index: usize) -> &'data T {
        debug_assert!(index < self.len);
        &*self.ptr.add(index)
    }
}

/// Exclusive parallel iterator over a slice (`par_iter_mut`).
pub struct IterMut<'data, T> {
    ptr: *mut T,
    len: usize,
    min_len: usize,
    marker: std::marker::PhantomData<&'data mut [T]>,
}

unsafe impl<T: Send> Send for IterMut<'_, T> {}
// SAFETY: `pi_get` hands out `&mut` from a shared `&self`, which is sound
// only under the engine's exactly-once index contract.
unsafe impl<T: Send> Sync for IterMut<'_, T> {}

impl<'data, T: Send> ParallelIterator for IterMut<'data, T> {
    type Item = &'data mut T;
    fn pi_len(&self) -> usize {
        self.len
    }
    fn pi_min_len(&self) -> usize {
        self.min_len
    }
    fn pi_set_min_len(&mut self, min_len: usize) {
        self.min_len = min_len;
    }
    unsafe fn pi_get(&self, index: usize) -> &'data mut T {
        debug_assert!(index < self.len);
        &mut *self.ptr.add(index)
    }
}

/// Parallel iterator over non-overlapping subslices (`par_chunks`).
/// `with_min_len` counts *chunks*, not elements.
pub struct Chunks<'data, T> {
    ptr: *const T,
    len: usize,
    chunk_size: usize,
    min_len: usize,
    marker: std::marker::PhantomData<&'data [T]>,
}

unsafe impl<T: Sync> Send for Chunks<'_, T> {}
unsafe impl<T: Sync> Sync for Chunks<'_, T> {}

impl<'data, T: Sync> ParallelIterator for Chunks<'data, T> {
    type Item = &'data [T];
    fn pi_len(&self) -> usize {
        self.len.div_ceil(self.chunk_size)
    }
    fn pi_min_len(&self) -> usize {
        self.min_len
    }
    fn pi_set_min_len(&mut self, min_len: usize) {
        self.min_len = min_len;
    }
    unsafe fn pi_get(&self, index: usize) -> &'data [T] {
        let start = index * self.chunk_size;
        debug_assert!(start < self.len);
        let len = self.chunk_size.min(self.len - start);
        std::slice::from_raw_parts(self.ptr.add(start), len)
    }
}

/// Exclusive parallel iterator over non-overlapping subslices
/// (`par_chunks_mut`). `with_min_len` counts *chunks*, not elements.
pub struct ChunksMut<'data, T> {
    ptr: *mut T,
    len: usize,
    chunk_size: usize,
    min_len: usize,
    marker: std::marker::PhantomData<&'data mut [T]>,
}

unsafe impl<T: Send> Send for ChunksMut<'_, T> {}
// SAFETY: chunks at distinct indices are disjoint; see IterMut.
unsafe impl<T: Send> Sync for ChunksMut<'_, T> {}

impl<'data, T: Send> ParallelIterator for ChunksMut<'data, T> {
    type Item = &'data mut [T];
    fn pi_len(&self) -> usize {
        self.len.div_ceil(self.chunk_size)
    }
    fn pi_min_len(&self) -> usize {
        self.min_len
    }
    fn pi_set_min_len(&mut self, min_len: usize) {
        self.min_len = min_len;
    }
    unsafe fn pi_get(&self, index: usize) -> &'data mut [T] {
        let start = index * self.chunk_size;
        debug_assert!(start < self.len);
        let len = self.chunk_size.min(self.len - start);
        std::slice::from_raw_parts_mut(self.ptr.add(start), len)
    }
}

// ---------------------------------------------------------------- adapters

/// Index-aligned pairing of two parallel iterators.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn pi_len(&self) -> usize {
        self.a.pi_len().min(self.b.pi_len())
    }
    fn pi_min_len(&self) -> usize {
        self.a.pi_min_len().max(self.b.pi_min_len())
    }
    fn pi_set_min_len(&mut self, min_len: usize) {
        self.a.pi_set_min_len(min_len);
        self.b.pi_set_min_len(min_len);
    }
    unsafe fn pi_get(&self, index: usize) -> Self::Item {
        (self.a.pi_get(index), self.b.pi_get(index))
    }
}

/// Item-with-index adapter.
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_min_len(&self) -> usize {
        self.base.pi_min_len()
    }
    fn pi_set_min_len(&mut self, min_len: usize) {
        self.base.pi_set_min_len(min_len);
    }
    unsafe fn pi_get(&self, index: usize) -> Self::Item {
        (index, self.base.pi_get(index))
    }
}

/// Mapping adapter.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_min_len(&self) -> usize {
        self.base.pi_min_len()
    }
    fn pi_set_min_len(&mut self, min_len: usize) {
        self.base.pi_set_min_len(min_len);
    }
    unsafe fn pi_get(&self, index: usize) -> R {
        (self.f)(self.base.pi_get(index))
    }
}

// ---------------------------------------------------------------- slices

/// Slice extension: shared parallel iterators.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over the elements.
    fn par_iter(&self) -> Iter<'_, T>;
    /// Parallel iterator over `chunk_size`-element subslices (last may be
    /// shorter).
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Iter<'_, T> {
        Iter {
            ptr: self.as_ptr(),
            len: self.len(),
            min_len: 1,
            marker: std::marker::PhantomData,
        }
    }
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        Chunks {
            ptr: self.as_ptr(),
            len: self.len(),
            chunk_size,
            min_len: 1,
            marker: std::marker::PhantomData,
        }
    }
}

/// Slice extension: exclusive parallel iterators.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable elements.
    fn par_iter_mut(&mut self) -> IterMut<'_, T>;
    /// Parallel iterator over mutable `chunk_size`-element subslices (last
    /// may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> IterMut<'_, T> {
        IterMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            min_len: 1,
            marker: std::marker::PhantomData,
        }
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunksMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            chunk_size,
            min_len: 1,
            marker: std::marker::PhantomData,
        }
    }
}
