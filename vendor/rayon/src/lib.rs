//! # rayon (offline work-stealing runtime)
//!
//! A dependency-free, genuinely parallel stand-in for the `rayon` crate,
//! vendored so the qokit workspace builds without network access. It
//! implements the subset of rayon's API this workspace uses — same prelude,
//! same names — so swapping in crates.io rayon is a one-line
//! `[workspace.dependencies]` change when a registry is available.
//!
//! **Execution is parallel.** A lazily-initialized global pool of
//! work-stealing workers (per-worker deques plus an injector queue, built on
//! `std::sync::{Mutex, Condvar}` and atomics) backs:
//!
//! * [`join`] / [`scope`] — recursive fork-join primitives;
//! * [`prelude::ParallelSlice`] / [`prelude::ParallelSliceMut`] —
//!   `par_iter`, `par_iter_mut`, `par_chunks`, `par_chunks_mut` with the
//!   `zip` / `enumerate` / `map` / `with_min_len` adapters and the
//!   `for_each` / `sum` / `reduce` / `collect` terminals;
//! * [`ThreadPool`] — explicitly sized pools; [`ThreadPool::install`] scopes
//!   parallel execution to that pool;
//! * [`SubsetPool`] — disjoint slices of one pool's workers
//!   ([`ThreadPool::split`] / [`split_current`]); `install` scopes execution
//!   to the slice, with subset-local [`current_num_threads`] /
//!   [`current_thread_index`], so sibling subsets run concurrently without
//!   stealing each other's work (point×kernel nested parallelism);
//! * [`strided_lanes`] — the strided lane fan-out built on top: `n` items
//!   spread over sibling subsets, results returned keyed by item index.
//!
//! The global pool's size comes from `QOKIT_THREADS` (then
//! `RAYON_NUM_THREADS`); `0`, garbage, or absence mean the hardware thread
//! count. Workers park on a condvar when idle — an oversubscribed pool costs
//! context switches, not spin cycles.
//!
//! Index-range splitting is deterministic for a given pool size; only the
//! assignment of ranges to workers is dynamic. Elementwise kernels therefore
//! produce bit-identical results run to run, and reductions associate along
//! a fixed tree.
//!
//! ```
//! use rayon::prelude::*;
//!
//! let mut xs = vec![1.0f64; 1 << 14];
//! xs.par_iter_mut().with_min_len(1024).for_each(|x| *x *= 2.0);
//! let total: f64 = xs.par_iter().with_min_len(1024).sum();
//! assert_eq!(total, 2.0 * (1 << 14) as f64);
//!
//! let (a, b) = rayon::join(|| 1 + 1, || 2 + 4);
//! assert_eq!((a, b), (2, 6));
//! ```

#![warn(missing_docs)]

mod iter;
mod lanes;
mod registry;

pub use iter::{
    Chunks, ChunksMut, Enumerate, FromParallelIterator, Iter, IterMut, Map, ParallelIterator,
    ParallelSlice, ParallelSliceMut, Zip,
};
pub use lanes::strided_lanes;
pub use registry::{join, scope, split_current, Scope, SubsetPool};

use registry::Registry;
use std::sync::Arc;

/// The customary glob-import module, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

/// Number of threads parallel work on the current thread splits over: the
/// current pool's size on a worker thread, the global pool's size elsewhere.
pub fn current_num_threads() -> usize {
    registry::effective_parallelism()
}

/// Index of the calling thread within its pool (`0..num_threads`), or `None`
/// when the caller is not a pool worker. Mirrors
/// `rayon::current_thread_index`; callers use it to maintain per-worker
/// scratch state (e.g. reusable simulator buffers) without locking a single
/// shared slot. Inside a [`SubsetPool`] the index is subset-local
/// (`0..subset_width`), matching what [`current_num_threads`] reports there.
pub fn current_thread_index() -> Option<usize> {
    registry::current_worker().map(|(_, idx)| match registry::current_domain() {
        Some((lo, _)) => idx - lo,
        None => idx,
    })
}

/// Error type returned by [`ThreadPoolBuilder::build`].
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `num_threads` workers; `0` (the default) means the
    /// environment-configured count (`QOKIT_THREADS`, else hardware).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool, spawning its workers.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let num_threads = if self.num_threads == 0 {
            registry::default_num_threads()
        } else {
            self.num_threads
        };
        let registry = Registry::new(num_threads);
        let handles = registry.spawn_workers();
        Ok(ThreadPool { registry, handles })
    }
}

/// An explicitly-sized work-stealing thread pool. Dropping the pool shuts
/// its workers down (after any in-flight `install` has returned).
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Runs `op` inside this pool and returns its result: parallel
    /// operations within `op` split across *this* pool's workers. Executes
    /// inline when the calling thread already belongs to the pool.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        registry::in_registry(&self.registry, op)
    }

    /// The worker count this pool was built with.
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }

    /// Partitions this pool's workers into consecutive disjoint
    /// [`SubsetPool`]s of the given sizes (sizes may sum to less than the
    /// pool width; leftover workers simply take no subset work). Each
    /// subset's `install` scopes execution to its slice of the workers,
    /// so sibling subsets run concurrently without stealing from each
    /// other — e.g. `pool.split(&[4, 4, 4, 4])` turns a 16-worker pool
    /// into four independent 4-worker lanes.
    ///
    /// # Panics
    /// If `sizes` is empty, contains a zero, or sums past the pool width.
    pub fn split(&self, sizes: &[usize]) -> Vec<SubsetPool> {
        registry::split_range(&self.registry, (0, self.registry.num_threads()), sizes)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_iter_matches_sequential() {
        let mut v: Vec<i64> = (0..10_000).collect();
        v.par_iter_mut().with_min_len(64).for_each(|x| *x += 1);
        let sum: i64 = v.par_iter().with_min_len(64).map(|&x| x).sum();
        assert_eq!(sum, (1..=10_000).sum::<i64>());
        let chunk_sums: Vec<i64> = v.par_chunks(100).map(|c| c.iter().sum()).collect();
        assert_eq!(chunk_sums.len(), 100);
        assert_eq!(chunk_sums.iter().sum::<i64>(), sum);
    }

    #[test]
    fn zip_enumerate_shapes() {
        let a: Vec<f64> = (0..4096).map(|i| i as f64).collect();
        let mut b = vec![0.0f64; 4096];
        b.par_iter_mut()
            .with_min_len(32)
            .zip(a.par_iter().with_min_len(32))
            .enumerate()
            .for_each(|(i, (dst, &src))| *dst = src + i as f64);
        for (i, x) in b.iter().enumerate() {
            assert_eq!(*x, 2.0 * i as f64);
        }
    }

    #[test]
    fn par_chunks_mut_disjoint_writes() {
        let mut v = vec![0u64; 8192];
        v.par_chunks_mut(128).enumerate().for_each(|(ci, chunk)| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = (ci * 128 + i) as u64;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| (0..1000).sum::<u64>(), || "right");
        assert_eq!(a, 499_500);
        assert_eq!(b, "right");
    }

    #[test]
    fn join_nests_deeply() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(16), 987);
    }

    #[test]
    fn pool_install_scopes_execution() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3, "ops inside install must see the pool's size");
        let n = pool.install(|| {
            let v: Vec<usize> = (0..100).collect();
            v.par_iter().with_min_len(1).map(|&x| x).sum::<usize>()
        });
        assert_eq!(n, 4950);
    }

    #[test]
    fn scope_runs_all_spawns() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..64 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn reduce_with_identity() {
        let v: Vec<u64> = (1..=64).collect();
        let max = v.par_iter().map(|&x| x).reduce(|| 0, u64::max);
        assert_eq!(max, 64);
    }

    #[test]
    fn sum_of_empty_is_zero() {
        let v: Vec<f64> = Vec::new();
        let s: f64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 0.0);
    }

    #[test]
    fn current_thread_index_identifies_workers() {
        // Off-pool threads have no index.
        assert_eq!(current_thread_index(), None);
        // Every worker of an explicit pool reports an index inside bounds.
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let idx = pool.install(current_thread_index);
        assert!(matches!(idx, Some(i) if i < 3));
        let indices: Vec<Option<usize>> = {
            let v: Vec<u32> = (0..64).collect();
            pool.install(|| {
                v.par_iter()
                    .with_min_len(1)
                    .map(|_| current_thread_index())
                    .collect()
            })
        };
        for idx in indices {
            assert!(matches!(idx, Some(i) if i < 3));
        }
    }

    #[test]
    fn thread_env_parsing() {
        use crate::registry::parse_thread_env;
        // "0 or unset (or garbage) → hardware threads" — the contract
        // Backend::auto() in qokit-statevec relies on via
        // current_num_threads().
        assert_eq!(parse_thread_env(None), None);
        assert_eq!(parse_thread_env(Some("0")), None);
        assert_eq!(parse_thread_env(Some("not-a-number")), None);
        assert_eq!(parse_thread_env(Some("1")), Some(1));
        assert_eq!(parse_thread_env(Some("4")), Some(4));
        assert_eq!(parse_thread_env(Some(" 2 ")), Some(2));
    }
}
