//! # rayon (offline shim)
//!
//! A minimal, dependency-free stand-in for the `rayon` crate, vendored so the
//! qokit workspace builds without network access.
//!
//! **Execution is sequential.** `par_iter`, `par_iter_mut`, `par_chunks`, and
//! `par_chunks_mut` return the corresponding *standard-library* iterators, and
//! rayon-specific tuning knobs ([`ParallelTuning::with_min_len`] /
//! [`ParallelTuning::with_max_len`]) are identity adapters. Every kernel that
//! offers a `Backend::Rayon` flavor therefore computes the same result as its
//! serial twin, just without the speedup — swapping this shim for crates.io
//! rayon (same prelude imports) restores real parallelism. Replacing this shim
//! with a true work-stealing pool is tracked on the ROADMAP.
//!
//! ```
//! use rayon::prelude::*;
//!
//! let mut xs = vec![1.0f64; 8];
//! xs.par_iter_mut().with_min_len(4).for_each(|x| *x *= 2.0);
//! let total: f64 = xs.par_iter().sum();
//! assert_eq!(total, 16.0);
//! ```

#![warn(missing_docs)]

/// Slice extension: shared parallel-style iterators (sequential here).
pub trait ParallelSlice<T> {
    /// Sequential stand-in for rayon's `par_iter`.
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
    /// Sequential stand-in for rayon's `par_chunks`.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// Slice extension: mutable parallel-style iterators (sequential here).
pub trait ParallelSliceMut<T> {
    /// Sequential stand-in for rayon's `par_iter_mut`.
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    /// Sequential stand-in for rayon's `par_chunks_mut`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// Rayon's per-task granularity knobs, as identity adapters on any iterator.
pub trait ParallelTuning: Iterator + Sized {
    /// No-op: granularity hints are meaningless for sequential execution.
    fn with_min_len(self, _min: usize) -> Self {
        self
    }
    /// No-op: granularity hints are meaningless for sequential execution.
    fn with_max_len(self, _max: usize) -> Self {
        self
    }
}

impl<I: Iterator> ParallelTuning for I {}

/// The customary glob-import module, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{ParallelSlice, ParallelSliceMut, ParallelTuning};
}

/// Returns the number of threads a real pool would use (hardware threads).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Error type returned by [`ThreadPoolBuilder::build`] (never constructed).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`; the pool it builds runs
/// closures on the calling thread.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the requested thread count (informational only in this shim).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the (sequential) pool. Never fails.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                current_num_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// A "pool" that executes installed closures on the calling thread.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` (on the calling thread) and returns its result.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }

    /// The thread count this pool was configured with.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn shim_matches_std_iterators() {
        let mut v: Vec<i64> = (0..100).collect();
        v.par_iter_mut().with_min_len(8).for_each(|x| *x += 1);
        let sum: i64 = v.par_iter().with_min_len(8).map(|&x| x).sum();
        assert_eq!(sum, (1..=100).sum::<i64>());
        let chunk_sums: Vec<i64> = v.par_chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(chunk_sums.len(), 10);
    }

    #[test]
    fn pool_install_runs_closure() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 2 + 2), 4);
        assert_eq!(pool.current_num_threads(), 4);
    }
}
