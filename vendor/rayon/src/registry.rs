//! The work-stealing execution engine: worker registries, jobs, latches.
//!
//! One [`Registry`] owns `num_threads` worker threads. Each worker has its
//! own deque (newest-first for the owner, oldest-first for thieves) and the
//! registry has a shared injector queue for work arriving from threads
//! outside the pool. Everything is built on `std::sync` primitives —
//! `Mutex`/`Condvar` for sleeping and atomics for latches — so the crate
//! stays dependency-free.
//!
//! Blocking protocol: every state change another thread might be waiting on
//! (job pushed, latch set, scope counter hitting zero, terminate flag) bumps
//! an event counter under the sleep mutex and notifies the condvar. Sleepers
//! snapshot the counter *before* searching for work and go to sleep only if
//! it is unchanged, so no wakeup can be lost.

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

// ---------------------------------------------------------------- jobs

/// Type-erased pointer to an executable job. The creator guarantees the
/// pointee stays alive until `execute` completes (stack jobs are owned by a
/// frame that blocks on the job's latch; heap jobs own themselves).
///
/// Every job carries a *domain*: the half-open worker-index range
/// `[lo, hi)` of its registry allowed to execute it. Plain pool work uses
/// the full range; subset pools ([`SubsetPool`]) narrow it, which is what
/// scopes their `install` to a disjoint slice of the workers.
pub(crate) struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const ()),
    domain: (usize, usize),
}

// SAFETY: a JobRef is a one-shot handle moved to exactly one executor; the
// Job impl is responsible for any interior synchronization.
unsafe impl Send for JobRef {}

impl JobRef {
    pub(crate) unsafe fn new<J: Job>(data: *const J, domain: (usize, usize)) -> JobRef {
        JobRef {
            data: data as *const (),
            execute_fn: exec_job::<J>,
            domain,
        }
    }

    pub(crate) fn data(&self) -> *const () {
        self.data
    }

    /// `true` when worker `idx` is allowed to execute this job.
    fn eligible(&self, idx: usize) -> bool {
        self.domain.0 <= idx && idx < self.domain.1
    }

    pub(crate) fn execute(self) {
        // Execution happens *inside* the job's domain: `current_num_threads`
        // / `current_thread_index` report subset-local values, and any work
        // the job forks inherits the domain. The guard restores the previous
        // domain even if the job unwinds.
        let _guard = DomainGuard::enter(self.domain);
        unsafe { (self.execute_fn)(self.data) }
    }
}

unsafe fn exec_job<J: Job>(data: *const ()) {
    J::execute(data as *const J);
}

/// Something executable through a type-erased [`JobRef`].
pub(crate) trait Job {
    /// # Safety
    /// Called at most once, with `this` valid for the duration of the call.
    unsafe fn execute(this: *const Self);
}

/// A job whose closure and result slot live on the owner's stack. Sound
/// because the owner never leaves `join`/`install` until the job's latch is
/// set, which keeps the borrowed frame alive for the job's whole run.
pub(crate) struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<thread::Result<R>>>,
    latch: Latch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(func: F, registry: *const Registry) -> Self {
        StackJob {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            latch: Latch::new(registry),
        }
    }

    pub(crate) fn latch(&self) -> &Latch {
        &self.latch
    }

    pub(crate) unsafe fn as_job_ref(&self, domain: (usize, usize)) -> JobRef {
        JobRef::new(self, domain)
    }

    /// Runs the closure on the owner's thread (the job never escaped, or was
    /// popped back before any thief saw it).
    pub(crate) fn run_inline(self) -> R {
        let func = self.func.into_inner().expect("job executed twice");
        func()
    }

    /// Takes the stolen-execution result; re-raises the job's panic, if any.
    /// Only valid after the latch is set.
    pub(crate) fn into_result(self) -> R {
        match self
            .result
            .into_inner()
            .expect("latch set but no result stored")
        {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

impl<F, R> Job for StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    unsafe fn execute(this: *const Self) {
        let this = &*this;
        let func = (*this.func.get()).take().expect("job executed twice");
        // Catch panics so a panicking task can never leave its joiner
        // blocked forever; the payload is re-raised by `into_result`.
        let result = panic::catch_unwind(AssertUnwindSafe(func));
        *this.result.get() = Some(result);
        this.latch.set();
    }
}

/// A boxed, self-owning job (used by `scope::spawn`). The closure performs
/// its own panic containment and completion signalling.
pub(crate) struct HeapJob {
    func: Option<Box<dyn FnOnce() + Send>>,
}

impl HeapJob {
    pub(crate) fn new(func: Box<dyn FnOnce() + Send>) -> Box<Self> {
        Box::new(HeapJob { func: Some(func) })
    }

    pub(crate) unsafe fn into_job_ref(self: Box<Self>, domain: (usize, usize)) -> JobRef {
        JobRef::new(Box::into_raw(self), domain)
    }
}

impl Job for HeapJob {
    unsafe fn execute(this: *const Self) {
        let mut job = Box::from_raw(this as *mut Self);
        (job.func.take().expect("heap job executed twice"))();
    }
}

// ---------------------------------------------------------------- domains

thread_local! {
    /// The worker-index range `[lo, hi)` the current thread is executing
    /// inside, when it is running a job. `None` between jobs (and on
    /// non-worker threads). `current_num_threads` reports `hi − lo` and
    /// `current_thread_index` reports `idx − lo`, so code installed into a
    /// [`SubsetPool`] sees subset-local values without any changes.
    static DOMAIN: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// The domain the current thread is executing inside, if any.
pub(crate) fn current_domain() -> Option<(usize, usize)> {
    DOMAIN.with(|d| d.get())
}

/// The current domain, defaulting to the full range of `registry`.
fn current_domain_or_full(registry: &Registry) -> (usize, usize) {
    current_domain().unwrap_or((0, registry.num_threads()))
}

/// RAII entry into a domain: restores the previous domain on drop, so
/// unwinding jobs cannot leak a stale domain onto the worker.
struct DomainGuard {
    prev: Option<(usize, usize)>,
}

impl DomainGuard {
    fn enter(domain: (usize, usize)) -> DomainGuard {
        DomainGuard {
            prev: DOMAIN.with(|d| d.replace(Some(domain))),
        }
    }
}

impl Drop for DomainGuard {
    fn drop(&mut self) {
        DOMAIN.with(|d| d.set(self.prev));
    }
}

// ---------------------------------------------------------------- latch

/// One-shot completion flag that publishes through the registry's event
/// counter so sleeping waiters wake up.
pub(crate) struct Latch {
    flag: AtomicBool,
    registry: *const Registry,
}

// SAFETY: the raw registry pointer outlives every latch created against it —
// worker threads hold an `Arc<Registry>` for as long as any job can run, and
// the global registry is never dropped.
unsafe impl Send for Latch {}
unsafe impl Sync for Latch {}

impl Latch {
    pub(crate) fn new(registry: *const Registry) -> Latch {
        Latch {
            flag: AtomicBool::new(false),
            registry,
        }
    }

    pub(crate) fn probe(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    pub(crate) fn set(&self) {
        // Copy the pointer out first: the instant the flag becomes visible,
        // the owner may return and pop the stack frame holding `self`.
        let registry = self.registry;
        self.flag.store(true, Ordering::Release);
        unsafe { (*registry).notify_all() };
    }
}

// ---------------------------------------------------------------- registry

/// A set of worker threads plus the queues that feed them.
pub(crate) struct Registry {
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    injector: Mutex<VecDeque<JobRef>>,
    num_threads: usize,
    /// Event counter guarded by the sleep mutex; see module docs.
    sleep: Mutex<u64>,
    condvar: Condvar,
    terminate: AtomicBool,
}

impl Registry {
    pub(crate) fn new(num_threads: usize) -> Arc<Registry> {
        let num_threads = num_threads.max(1);
        Arc::new(Registry {
            deques: (0..num_threads)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            injector: Mutex::new(VecDeque::new()),
            num_threads,
            sleep: Mutex::new(0),
            condvar: Condvar::new(),
            terminate: AtomicBool::new(false),
        })
    }

    pub(crate) fn spawn_workers(self: &Arc<Self>) -> Vec<thread::JoinHandle<()>> {
        (0..self.num_threads)
            .map(|idx| {
                let registry = Arc::clone(self);
                thread::Builder::new()
                    .name(format!("qokit-rayon-{idx}"))
                    .spawn(move || worker_main(registry, idx))
                    .expect("failed to spawn thread-pool worker")
            })
            .collect()
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.num_threads
    }

    pub(crate) fn terminate(&self) {
        self.terminate.store(true, Ordering::Release);
        self.notify_all();
    }

    fn event_count(&self) -> u64 {
        *self.sleep.lock().unwrap()
    }

    /// Publishes a state change: bumps the event counter and wakes sleepers.
    pub(crate) fn notify_all(&self) {
        let mut events = self.sleep.lock().unwrap();
        *events = events.wrapping_add(1);
        self.condvar.notify_all();
    }

    /// Sleeps until the event counter moves past `seen` (or `done` already
    /// holds). The snapshot protocol is lossless for conditions signalled
    /// through *this* registry (work pushes, latch sets, terminate), so no
    /// timeout is needed: idle workers park until genuinely woken.
    fn sleep_unless(&self, seen: u64, done: impl Fn() -> bool) {
        let events = self.sleep.lock().unwrap();
        if *events != seen || done() {
            return;
        }
        drop(self.condvar.wait(events).unwrap());
    }

    /// Like [`Registry::sleep_unless`], but with a polling timeout — for
    /// waits whose completion signal arrives at a *different* registry's
    /// condvar (a worker of pool A blocked on pool B), which this registry
    /// can never be notified about.
    fn sleep_unless_foreign(&self, seen: u64, done: impl Fn() -> bool) {
        let events = self.sleep.lock().unwrap();
        if *events != seen || done() {
            return;
        }
        drop(
            self.condvar
                .wait_timeout(events, Duration::from_millis(1))
                .unwrap(),
        );
    }

    /// Queues work from outside the pool.
    pub(crate) fn inject(&self, job: JobRef) {
        self.injector.lock().unwrap().push_back(job);
        self.notify_all();
    }

    /// Queues work on worker `idx`'s own deque (depth-first position).
    pub(crate) fn push_local(&self, idx: usize, job: JobRef) {
        self.deques[idx].lock().unwrap().push_back(job);
        self.notify_all();
    }

    /// Pops worker `idx`'s newest job *if* it is the one at `data` — i.e. if
    /// no thief took it. Used by `join` to run the second closure inline.
    fn pop_local_if(&self, idx: usize, data: *const ()) -> bool {
        let mut deque = self.deques[idx].lock().unwrap();
        if deque.back().is_some_and(|j| j.data() == data) {
            deque.pop_back();
            true
        } else {
            false
        }
    }

    /// Finds a job worker `idx` may execute: own deque newest-first, then
    /// steal oldest-first from siblings (round-robin), then the injector.
    /// Steals and injector pops skip jobs whose domain excludes `idx` — the
    /// mechanism that keeps subset-pool work on the subset's workers.
    fn find_work(&self, idx: usize) -> Option<JobRef> {
        if let Some(job) = self.deques[idx].lock().unwrap().pop_back() {
            // A worker only pushes locally while executing inside a domain
            // containing its own index, so its own deque holds only
            // eligible jobs.
            debug_assert!(job.eligible(idx));
            return Some(job);
        }
        for offset in 1..self.num_threads {
            let victim = (idx + offset) % self.num_threads;
            if let Some(job) = take_eligible(&mut self.deques[victim].lock().unwrap(), idx) {
                return Some(job);
            }
        }
        take_eligible(&mut self.injector.lock().unwrap(), idx)
    }

    /// Worker-side wait: keep executing other jobs until `done` holds.
    /// This is what makes nested parallelism deadlock-free — a worker
    /// blocked on a sub-task drains the rest of the queue instead of
    /// parking. `foreign` must be `true` when `done` is signalled through a
    /// different registry (see [`Registry::sleep_unless_foreign`]).
    pub(crate) fn wait_while_helping(&self, idx: usize, done: impl Fn() -> bool, foreign: bool) {
        while !done() {
            let seen = self.event_count();
            if let Some(job) = self.find_work(idx) {
                job.execute();
                continue;
            }
            if done() {
                return;
            }
            if foreign {
                self.sleep_unless_foreign(seen, &done);
            } else {
                self.sleep_unless(seen, &done);
            }
        }
    }

    /// Foreign-thread wait: plain blocking (threads outside the pool have no
    /// deque to help from).
    pub(crate) fn wait_external(&self, done: impl Fn() -> bool) {
        while !done() {
            let seen = self.event_count();
            self.sleep_unless(seen, &done);
        }
    }
}

/// Removes the oldest job in `deque` that worker `idx` may execute.
fn take_eligible(deque: &mut VecDeque<JobRef>, idx: usize) -> Option<JobRef> {
    let pos = deque.iter().position(|j| j.eligible(idx))?;
    deque.remove(pos)
}

fn worker_main(registry: Arc<Registry>, idx: usize) {
    WORKER.with(|w| w.set(Some((Arc::as_ptr(&registry), idx))));
    loop {
        let seen = registry.event_count();
        if let Some(job) = registry.find_work(idx) {
            job.execute();
            continue;
        }
        if registry.terminate.load(Ordering::Acquire) {
            break;
        }
        registry.sleep_unless(seen, || registry.terminate.load(Ordering::Acquire));
    }
    WORKER.with(|w| w.set(None));
}

thread_local! {
    /// (registry, worker index) when the current thread is a pool worker.
    /// The raw pointer is valid for the thread's lifetime: `worker_main`
    /// owns an `Arc<Registry>` for as long as the slot is populated.
    static WORKER: Cell<Option<(*const Registry, usize)>> = const { Cell::new(None) };
}

pub(crate) fn current_worker() -> Option<(*const Registry, usize)> {
    WORKER.with(|w| w.get())
}

// ---------------------------------------------------------------- entry

/// Runs `op` inside `registry`: inline when already on one of its workers,
/// otherwise injected and awaited. This is the semantics of
/// `ThreadPool::install` — parallel ops inside `op` split on that pool.
pub(crate) fn in_registry<OP, R>(registry: &Arc<Registry>, op: OP) -> R
where
    OP: FnOnce() -> R + Send,
    R: Send,
{
    let full = (0, registry.num_threads());
    in_registry_domain(registry, full, op)
}

/// Runs `op` inside `registry`, scoped to the worker-index range `domain`:
/// the semantics of [`SubsetPool::install`]. Runs inline (under the
/// narrowed domain) when the calling thread is a member worker; otherwise
/// the job is injected and only member workers can take it.
pub(crate) fn in_registry_domain<OP, R>(
    registry: &Arc<Registry>,
    domain: (usize, usize),
    op: OP,
) -> R
where
    OP: FnOnce() -> R + Send,
    R: Send,
{
    if let Some((current, idx)) = current_worker() {
        if std::ptr::eq(current, Arc::as_ptr(registry)) && domain.0 <= idx && idx < domain.1 {
            let _guard = DomainGuard::enter(domain);
            return op();
        }
    }
    let job = StackJob::new(op, Arc::as_ptr(registry));
    unsafe { registry.inject(job.as_job_ref(domain)) };
    if let Some((current, idx)) = current_worker() {
        // A worker outside the domain (same pool) or of a different pool:
        // keep helping with work it is allowed to run meanwhile. The latch
        // only notifies `registry`'s condvar, so the wait is foreign unless
        // the helper belongs to that same registry.
        let foreign = !std::ptr::eq(current, Arc::as_ptr(registry));
        unsafe { (*current).wait_while_helping(idx, || job.latch().probe(), foreign) };
    } else {
        registry.wait_external(|| job.latch().probe());
    }
    job.into_result()
}

/// Potentially-parallel `join`; see the crate-level docs.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match current_worker() {
        Some((registry, idx)) => unsafe { join_on_worker(&*registry, idx, oper_a, oper_b) },
        None => in_registry(global_registry(), move || join(oper_a, oper_b)),
    }
}

unsafe fn join_on_worker<A, B, RA, RB>(
    registry: &Registry,
    idx: usize,
    oper_a: A,
    oper_b: B,
) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let domain = current_domain_or_full(registry);
    let job_b = StackJob::new(oper_b, registry as *const Registry);
    registry.push_local(idx, job_b.as_job_ref(domain));

    // Run `a` ourselves. If it panics we must still synchronize with `b`
    // (its job borrows this very stack frame) before unwinding.
    let result_a = panic::catch_unwind(AssertUnwindSafe(oper_a));

    if registry.pop_local_if(idx, &job_b as *const _ as *const ()) {
        // Nobody stole `b`: run it inline.
        match result_a {
            Ok(ra) => (ra, job_b.run_inline()),
            Err(payload) => {
                drop(job_b); // never ran; discard
                panic::resume_unwind(payload)
            }
        }
    } else {
        // Stolen: help with other work until the thief finishes.
        registry.wait_while_helping(idx, || job_b.latch().probe(), false);
        match result_a {
            Ok(ra) => (ra, job_b.into_result()),
            Err(payload) => panic::resume_unwind(payload), // a's panic wins
        }
    }
}

// ---------------------------------------------------------------- scope

/// A fork-join scope; created by [`scope`].
pub struct Scope<'scope> {
    registry: *const Registry,
    /// Domain the scope was created in; every spawned task inherits it, so
    /// a scope inside a [`SubsetPool`] stays on the subset's workers.
    domain: (usize, usize),
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    marker: std::marker::PhantomData<fn(&'scope ()) -> &'scope ()>,
}

// SAFETY: shared across worker threads only while the owning `scope` call
// blocks; interior state is atomics + a mutex.
unsafe impl Sync for Scope<'_> {}
unsafe impl Send for Scope<'_> {}

impl<'scope> Scope<'scope> {
    /// Spawns `body` into the scope; it may borrow anything that outlives
    /// the `scope` call.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        let scope_ptr = self as *const Scope<'scope> as usize;
        let func = move || {
            // SAFETY: the `scope` call blocks until `pending` drains, so the
            // Scope (and everything 'scope borrows) is still alive.
            let scope: &Scope<'scope> = unsafe { &*(scope_ptr as *const Scope<'scope>) };
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(scope))) {
                let mut slot = scope.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            // Copy the registry pointer out before the decrement: once
            // `pending` hits zero the scope frame may die.
            let registry = scope.registry;
            if scope.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                unsafe { (*registry).notify_all() };
            }
        };
        let func: Box<dyn FnOnce() + Send + 'scope> = Box::new(func);
        // SAFETY: lifetime erasure; the job completes before 'scope ends
        // because `scope` waits for `pending == 0`.
        let func: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(func) };
        let job_ref = unsafe { HeapJob::new(func).into_job_ref(self.domain) };
        if let Some((registry, idx)) = current_worker() {
            // Push locally only when this worker may execute the job itself
            // (preserves the own-deque eligibility invariant of find_work).
            if std::ptr::eq(registry, self.registry) && self.domain.0 <= idx && idx < self.domain.1
            {
                unsafe { (*registry).push_local(idx, job_ref) };
                return;
            }
        }
        unsafe { (*self.registry).inject(job_ref) };
    }
}

/// Creates a fork-join scope: closures spawned on it may borrow non-`'static`
/// data, and `scope` does not return until every spawned task has finished.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let registry = match current_worker() {
        // SAFETY: worker threads keep their registry alive; recover an Arc.
        Some((registry, _)) => unsafe {
            Arc::increment_strong_count(registry);
            Arc::from_raw(registry)
        },
        None => Arc::clone(global_registry()),
    };
    // A scope opened inside a subset stays in the subset's domain.
    let domain = current_domain_or_full(&registry);
    in_registry_domain(&registry, domain, move || {
        let (registry_ptr, idx) = current_worker().expect("scope body must run on a worker");
        let scope = Scope {
            registry: registry_ptr,
            domain,
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            marker: std::marker::PhantomData,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| op(&scope)));
        // Drain the scope even if `op` itself panicked: spawned jobs borrow
        // frames below us.
        unsafe {
            (*registry_ptr).wait_while_helping(
                idx,
                || scope.pending.load(Ordering::SeqCst) == 0,
                false,
            );
        }
        if let Some(payload) = scope.panic.lock().unwrap().take() {
            panic::resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    })
}

// ---------------------------------------------------------------- global

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// The lazily-created global registry. Its workers live for the whole
/// process; their join handles are intentionally dropped.
pub(crate) fn global_registry() -> &'static Arc<Registry> {
    GLOBAL.get_or_init(|| {
        let registry = Registry::new(default_num_threads());
        drop(registry.spawn_workers());
        registry
    })
}

/// Parses a thread-count override: `Some(k)` for a positive integer, `None`
/// for `0`, garbage, or absence (all meaning "use the hardware count").
pub(crate) fn parse_thread_env(value: Option<&str>) -> Option<usize> {
    match value?.trim().parse::<usize>() {
        Ok(0) | Err(_) => None,
        Ok(k) => Some(k),
    }
}

/// Hardware thread count, floored at 1.
pub(crate) fn hardware_threads() -> usize {
    thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Default size for the global pool: `QOKIT_THREADS`, else
/// `RAYON_NUM_THREADS`, else the hardware thread count.
pub(crate) fn default_num_threads() -> usize {
    parse_thread_env(std::env::var("QOKIT_THREADS").ok().as_deref())
        .or_else(|| parse_thread_env(std::env::var("RAYON_NUM_THREADS").ok().as_deref()))
        .unwrap_or_else(hardware_threads)
}

/// Thread count parallel operations on the current thread would split over,
/// *without* forcing the global pool into existence. Inside a subset-pool
/// domain this is the subset's width, not the whole pool's.
pub(crate) fn effective_parallelism() -> usize {
    if let Some((lo, hi)) = current_domain() {
        hi - lo
    } else if let Some((registry, _)) = current_worker() {
        unsafe { (*registry).num_threads() }
    } else if let Some(global) = GLOBAL.get() {
        global.num_threads()
    } else {
        default_num_threads()
    }
}

// ---------------------------------------------------------------- subsets

/// A view of a disjoint slice of a pool's workers.
///
/// Created by [`ThreadPool::split`](crate::ThreadPool::split) or
/// [`split_current`](crate::split_current). [`SubsetPool::install`] scopes
/// execution to the subset exactly like `ThreadPool::install` scopes it to
/// a whole pool: every `join`/`scope`/parallel-iterator operation inside
/// splits only across the subset's workers, `current_num_threads` reports
/// the subset width, and `current_thread_index` reports subset-local
/// indices in `0..width`. Sibling subsets of one pool run concurrently
/// without stealing each other's work — the point×kernel nesting batched
/// parameter sweeps use.
#[derive(Clone)]
pub struct SubsetPool {
    registry: Arc<Registry>,
    lo: usize,
    hi: usize,
}

impl std::fmt::Debug for SubsetPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubsetPool")
            .field("workers", &(self.lo..self.hi))
            .finish()
    }
}

impl SubsetPool {
    /// Runs `op` scoped to this subset's workers and returns its result.
    /// Runs inline (under the narrowed domain) when the calling thread is
    /// already one of the subset's workers; otherwise the job is queued
    /// and only subset members can take it. Blocking callers that are
    /// workers of the same pool keep helping with eligible work, so nested
    /// installs cannot deadlock.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        in_registry_domain(&self.registry, (self.lo, self.hi), op)
    }

    /// Number of workers in this subset.
    pub fn current_num_threads(&self) -> usize {
        self.hi - self.lo
    }
}

/// Partitions the worker-index range `[lo, hi)` of `registry` into
/// consecutive disjoint subsets of the given sizes.
///
/// # Panics
/// If `sizes` is empty, any size is zero, or the sizes sum to more than
/// `hi - lo`.
pub(crate) fn split_range(
    registry: &Arc<Registry>,
    (lo, hi): (usize, usize),
    sizes: &[usize],
) -> Vec<SubsetPool> {
    assert!(!sizes.is_empty(), "need at least one subset");
    assert!(
        sizes.iter().all(|&s| s > 0),
        "subset sizes must be positive"
    );
    let total: usize = sizes.iter().sum();
    assert!(
        total <= hi - lo,
        "subset sizes sum to {total} but only {} workers are available",
        hi - lo
    );
    let mut start = lo;
    sizes
        .iter()
        .map(|&s| {
            let subset = SubsetPool {
                registry: Arc::clone(registry),
                lo: start,
                hi: start + s,
            };
            start += s;
            subset
        })
        .collect()
}

/// Splits the *current* execution context into disjoint subsets: the
/// calling thread's domain when it is a pool worker (so splitting nests —
/// a subset can be split again), otherwise the global pool's full range.
///
/// # Panics
/// As [`ThreadPool::split`](crate::ThreadPool::split): empty `sizes`, a
/// zero size, or sizes summing past the current context's worker count.
pub fn split_current(sizes: &[usize]) -> Vec<SubsetPool> {
    let registry = match current_worker() {
        // SAFETY: worker threads keep their registry alive; recover an Arc.
        Some((registry, _)) => unsafe {
            Arc::increment_strong_count(registry);
            Arc::from_raw(registry)
        },
        None => Arc::clone(global_registry()),
    };
    let domain = current_domain_or_full(&registry);
    split_range(&registry, domain, sizes)
}
