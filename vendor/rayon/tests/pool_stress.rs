//! Stress tests for the work-stealing pool: nested `install`, storms of
//! tiny jobs, panic containment, and cross-pool composition. These guard
//! the properties the qokit kernels rely on — above all, that no blocking
//! pattern the simulator can produce deadlocks the pool.

use rayon::prelude::*;
use rayon::{join, scope, ThreadPool, ThreadPoolBuilder};
use std::sync::atomic::{AtomicUsize, Ordering};

fn pool(threads: usize) -> ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool construction never fails")
}

#[test]
fn nested_install_same_pool_runs_inline() {
    let p = pool(2);
    let result = p.install(|| p.install(|| p.install(rayon::current_num_threads)));
    assert_eq!(result, 2);
}

#[test]
fn nested_install_across_pools() {
    // A worker of pool A blocks on pool B; B's workers make progress
    // independently, so this must complete.
    let a = pool(2);
    let b = pool(2);
    let result = a.install(|| {
        let inner = b.install(|| {
            let v: Vec<u64> = (0..10_000).collect();
            v.par_iter().with_min_len(16).map(|&x| x).sum::<u64>()
        });
        inner + 1
    });
    assert_eq!(result, 49_995_001);
}

#[test]
fn many_small_jobs_drain() {
    // Thousands of sub-min_len jobs: every one must run exactly once.
    let p = pool(4);
    let counter = AtomicUsize::new(0);
    p.install(|| {
        scope(|s| {
            for _ in 0..2_000 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
    });
    assert_eq!(counter.load(Ordering::SeqCst), 2_000);
}

#[test]
fn deep_join_recursion_under_small_pool() {
    // More concurrent joins than workers: forces the helping-wait path.
    fn sum_range(lo: u64, hi: u64) -> u64 {
        if hi - lo <= 8 {
            return (lo..hi).sum();
        }
        let mid = lo + (hi - lo) / 2;
        let (a, b) = join(|| sum_range(lo, mid), || sum_range(mid, hi));
        a + b
    }
    let p = pool(2);
    let total = p.install(|| sum_range(0, 1 << 14));
    assert_eq!(total, (1u64 << 14) * ((1 << 14) - 1) / 2);
}

#[test]
fn join_panic_propagates_and_pool_survives() {
    let p = pool(2);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        p.install(|| {
            join(|| 1 + 1, || -> usize { panic!("boom in b") });
        })
    }));
    assert!(result.is_err(), "the task panic must reach the caller");
    // The pool must still be fully operational afterwards.
    let ok = p.install(|| {
        let v: Vec<u32> = (0..1_000).collect();
        v.par_iter().with_min_len(1).map(|&x| x).sum::<u32>()
    });
    assert_eq!(ok, 499_500);
}

#[test]
fn scope_panic_propagates_after_drain() {
    let p = pool(2);
    let ran = AtomicUsize::new(0);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        p.install(|| {
            scope(|s| {
                let ran = &ran;
                for i in 0..32 {
                    s.spawn(move |_| {
                        ran.fetch_add(1, Ordering::SeqCst);
                        if i == 7 {
                            panic!("spawned task panic");
                        }
                    });
                }
            });
        })
    }));
    assert!(result.is_err());
    // Every spawned task ran (the scope drains before re-raising).
    assert_eq!(ran.load(Ordering::SeqCst), 32);
}

#[test]
fn parallel_ops_from_plain_thread_use_global_pool() {
    // No install at all: the terminal op ships itself to the global pool.
    let mut v = vec![1.0f64; 1 << 15];
    v.par_iter_mut().with_min_len(256).for_each(|x| *x += 1.0);
    let total: f64 = v.par_iter().with_min_len(256).sum();
    assert_eq!(total, 2.0 * (1 << 15) as f64);
}

#[test]
fn concurrent_installs_from_many_threads() {
    // External threads hammering one pool concurrently must all complete.
    let p = pool(2);
    std::thread::scope(|s| {
        for t in 0..8 {
            let p = &p;
            s.spawn(move || {
                let sum = p.install(|| {
                    let v: Vec<u64> = (0..4_096).map(|i| i + t).collect();
                    v.par_iter().with_min_len(64).map(|&x| x).sum::<u64>()
                });
                assert_eq!(sum, (0..4_096u64).map(|i| i + t).sum::<u64>());
            });
        }
    });
}

#[test]
fn oversubscribed_pool_correctness() {
    // Way more workers than cores: results must not change.
    let p = pool(16);
    let reference: f64 = (0..(1 << 12)).map(|i| (i as f64).sqrt()).sum();
    let parallel = p.install(|| {
        let v: Vec<f64> = (0..(1 << 12)).map(|i| (i as f64).sqrt()).collect();
        v.par_iter().with_min_len(8).sum::<f64>()
    });
    assert!((reference - parallel).abs() < 1e-9);
}

#[test]
fn drop_and_rebuild_pools_repeatedly() {
    for round in 0..16 {
        let p = pool(1 + round % 4);
        let n = p.install(|| {
            let v: Vec<usize> = (0..512).collect();
            v.par_iter().with_min_len(1).map(|&x| x).sum::<usize>()
        });
        assert_eq!(n, 512 * 511 / 2);
        drop(p); // workers must shut down cleanly every round
    }
}
