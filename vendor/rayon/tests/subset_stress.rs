//! Stress tests for pool-subset scheduling ([`rayon::SubsetPool`]): the
//! properties the point×kernel nested sweeps in qokit-core rely on —
//! subset-local `current_num_threads`/`current_thread_index`, isolation of
//! sibling subsets, and above all that no nesting of `join`/`scope`/
//! `install` inside or across subsets can deadlock.

use rayon::prelude::*;
use rayon::{join, scope, split_current, ThreadPool, ThreadPoolBuilder};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

fn pool(threads: usize) -> ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool construction never fails")
}

#[test]
fn subsets_report_subset_local_sizes() {
    let p = pool(4);
    let subsets = p.split(&[1, 3]);
    assert_eq!(subsets.len(), 2);
    assert_eq!(subsets[0].current_num_threads(), 1);
    assert_eq!(subsets[1].current_num_threads(), 3);
    // Inside install, the runtime itself reports the subset width...
    assert_eq!(subsets[0].install(rayon::current_num_threads), 1);
    assert_eq!(subsets[1].install(rayon::current_num_threads), 3);
    // ...and subset-local worker indices in 0..width.
    let indices: Vec<Option<usize>> = subsets[1].install(|| {
        let v: Vec<u32> = (0..64).collect();
        v.par_iter()
            .with_min_len(1)
            .map(|_| rayon::current_thread_index())
            .collect()
    });
    for idx in indices {
        assert!(matches!(idx, Some(i) if i < 3), "index {idx:?} out of 0..3");
    }
}

#[test]
fn split_covers_pool_disjointly() {
    // Work installed into sibling subsets must run on disjoint *global*
    // worker sets. We can't observe global indices directly (the API
    // reports subset-local ones, by design), so observe thread identity.
    let p = pool(4);
    let subsets = p.split(&[2, 2]);
    let ids: Vec<Mutex<Vec<std::thread::ThreadId>>> =
        (0..2).map(|_| Mutex::new(Vec::new())).collect();
    std::thread::scope(|s| {
        for (k, subset) in subsets.iter().enumerate() {
            let ids = &ids;
            s.spawn(move || {
                subset.install(|| {
                    let v: Vec<u32> = (0..512).collect();
                    v.par_iter().with_min_len(1).for_each(|_| {
                        ids[k].lock().unwrap().push(std::thread::current().id());
                    });
                });
            });
        }
    });
    let a: std::collections::HashSet<_> = ids[0].lock().unwrap().iter().copied().collect();
    let b: std::collections::HashSet<_> = ids[1].lock().unwrap().iter().copied().collect();
    assert!(!a.is_empty() && !b.is_empty());
    assert!(
        a.is_disjoint(&b),
        "sibling subsets must not share worker threads"
    );
}

#[test]
fn nested_join_inside_subsets_never_deadlocks() {
    // Deep recursive joins inside every subset of a small pool, driven
    // concurrently — more blocked frames than workers, so completion
    // depends on the helping-wait path honoring domains.
    fn sum_range(lo: u64, hi: u64) -> u64 {
        if hi - lo <= 8 {
            return (lo..hi).sum();
        }
        let mid = lo + (hi - lo) / 2;
        let (a, b) = join(|| sum_range(lo, mid), || sum_range(mid, hi));
        a + b
    }
    let p = pool(4);
    let subsets = p.split(&[1, 2, 1]);
    let expect = (1u64 << 13) * ((1 << 13) - 1) / 2;
    std::thread::scope(|s| {
        for subset in &subsets {
            s.spawn(move || {
                for _ in 0..4 {
                    assert_eq!(subset.install(|| sum_range(0, 1 << 13)), expect);
                }
            });
        }
    });
}

#[test]
fn scope_inside_subset_stays_on_subset() {
    let p = pool(4);
    let subsets = p.split(&[2, 2]);
    let counter = AtomicUsize::new(0);
    subsets[1].install(|| {
        scope(|s| {
            for _ in 0..256 {
                s.spawn(|_| {
                    // Every spawned task still sees the subset's width.
                    assert_eq!(rayon::current_num_threads(), 2);
                    assert!(matches!(rayon::current_thread_index(), Some(i) if i < 2));
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
    });
    assert_eq!(counter.load(Ordering::SeqCst), 256);
}

#[test]
fn install_across_sibling_subsets_completes() {
    // A subset worker blocking on a *different* subset of the same pool:
    // the blocker must keep helping with eligible work instead of parking,
    // and the target subset's workers must pick the job up.
    let p = pool(4);
    let subsets = p.split(&[2, 2]);
    let (a, b) = (&subsets[0], &subsets[1]);
    let result = a.install(|| {
        let inner = b.install(|| {
            assert_eq!(rayon::current_num_threads(), 2);
            let v: Vec<u64> = (0..4_096).collect();
            v.par_iter().with_min_len(16).map(|&x| x).sum::<u64>()
        });
        inner + 1
    });
    assert_eq!(result, 4_096 * 4_095 / 2 + 1);
}

#[test]
fn nested_split_partitions_the_subset() {
    // split_current inside a subset splits the *subset*, not the pool.
    let p = pool(4);
    let subsets = p.split(&[3, 1]);
    let widths = subsets[0].install(|| {
        let inner = split_current(&[1, 2]);
        (
            inner[0].install(rayon::current_num_threads),
            inner[1].install(rayon::current_num_threads),
        )
    });
    assert_eq!(widths, (1, 2));
}

#[test]
fn split_current_off_pool_splits_the_global_pool() {
    // From a plain thread, split_current partitions the global pool; the
    // sizes must respect whatever width the environment configured, so
    // ask for single-worker subsets (always valid).
    let subsets = split_current(&[1]);
    assert_eq!(subsets[0].install(rayon::current_num_threads), 1);
    assert_eq!(subsets[0].install(rayon::current_thread_index), Some(0));
}

#[test]
fn subset_of_one_runs_serially_but_correctly() {
    // A width-1 subset degenerates to serial execution: parallel ops see
    // one thread and run inline, and deep joins still complete.
    let p = pool(3);
    let subsets = p.split(&[1, 2]);
    let sum = subsets[0].install(|| {
        assert_eq!(rayon::current_num_threads(), 1);
        let v: Vec<u64> = (0..10_000).collect();
        v.par_iter().with_min_len(1).map(|&x| x).sum::<u64>()
    });
    assert_eq!(sum, 49_995_000);
}

#[test]
fn panic_inside_subset_propagates_and_pool_survives() {
    let p = pool(4);
    let subsets = p.split(&[2, 2]);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        subsets[0].install(|| {
            join(|| 1 + 1, || -> usize { panic!("boom in subset") });
        })
    }));
    assert!(result.is_err(), "the subset panic must reach the caller");
    // Both the panicking subset and its sibling stay fully operational.
    for subset in &subsets {
        let ok = subset.install(|| {
            let v: Vec<u32> = (0..1_000).collect();
            v.par_iter().with_min_len(1).map(|&x| x).sum::<u32>()
        });
        assert_eq!(ok, 499_500);
    }
    // And the parent pool as a whole.
    let ok = p.install(|| {
        let v: Vec<u32> = (0..100).collect();
        v.par_iter().with_min_len(1).map(|&x| x).sum::<u32>()
    });
    assert_eq!(ok, 4_950);
}

#[test]
fn storms_of_concurrent_subset_installs_drain() {
    // Many external threads hammering both subsets at once; every install
    // must complete (no lost wakeups, no cross-subset starvation).
    let p = pool(4);
    let subsets = p.split(&[2, 2]);
    let done = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for t in 0..8 {
            let subset = &subsets[t % 2];
            let done = &done;
            s.spawn(move || {
                for _ in 0..16 {
                    let sum = subset.install(|| {
                        let v: Vec<u64> = (0..1_024).map(|i| i + t as u64).collect();
                        v.par_iter().with_min_len(8).map(|&x| x).sum::<u64>()
                    });
                    assert_eq!(sum, (0..1_024u64).map(|i| i + t as u64).sum::<u64>());
                    done.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
    });
    assert_eq!(done.load(Ordering::SeqCst), 8 * 16);
}

#[test]
fn point_times_kernel_shape_end_to_end() {
    // The exact shape the batched sweeps use: an outer scope fans points
    // over subsets, each point runs a parallel kernel inside its subset.
    let p = pool(4);
    let subsets = p.split(&[2, 2]);
    let n_points = 12;
    let results: Vec<Mutex<Option<f64>>> = (0..n_points).map(|_| Mutex::new(None)).collect();
    p.install(|| {
        scope(|s| {
            for (lane, subset) in subsets.iter().enumerate() {
                let results = &results;
                s.spawn(move |_| {
                    for i in (lane..n_points).step_by(2) {
                        let e = subset.install(|| {
                            let v: Vec<f64> = (0..2_048).map(|k| ((i * k) as f64).sqrt()).collect();
                            v.par_iter().with_min_len(8).sum::<f64>()
                        });
                        *results[i].lock().unwrap() = Some(e);
                    }
                });
            }
        });
    });
    for (i, slot) in results.iter().enumerate() {
        let got = slot.lock().unwrap().expect("every point must complete");
        let expect: f64 = (0..2_048).map(|k| ((i * k) as f64).sqrt()).sum();
        assert!((got - expect).abs() < 1e-6, "point {i}");
    }
}

#[test]
fn strided_lanes_cover_every_item_exactly_once() {
    // The shared lane fan-out behind batched sweeps, multi-start lanes,
    // dist-scan ranks, and light-cone edge batches: every index-keyed slot
    // filled, each item executed exactly once, for many (items, lanes,
    // workers-per-lane) shapes including degenerate and over-clamped ones.
    let p = pool(4);
    for n_items in [0usize, 1, 3, 4, 7, 32] {
        for lanes in [1usize, 2, 3, 4, 9, usize::MAX] {
            for wpl in [0usize, 1, 2, usize::MAX] {
                let counts: Vec<AtomicUsize> = (0..n_items).map(|_| AtomicUsize::new(0)).collect();
                let out = p.install(|| {
                    rayon::strided_lanes(n_items, lanes, wpl, |i| {
                        counts[i].fetch_add(1, Ordering::SeqCst);
                        i * i
                    })
                });
                assert_eq!(out.len(), n_items, "n={n_items} l={lanes} w={wpl}");
                for (i, v) in out.iter().enumerate() {
                    assert_eq!(*v, i * i, "n={n_items} l={lanes} w={wpl}");
                    assert_eq!(counts[i].load(Ordering::SeqCst), 1, "item {i} run count");
                }
            }
        }
    }
}

#[test]
fn strided_lanes_pin_inner_work_to_lane_subsets() {
    // With 2 lanes × 2 workers on a 4-worker pool, every item's inner
    // parallel region must observe the lane's subset width, and sibling
    // lanes must execute on disjoint worker threads.
    let p = pool(4);
    let ids: Vec<Mutex<Vec<std::thread::ThreadId>>> =
        (0..2).map(|_| Mutex::new(Vec::new())).collect();
    let widths = p.install(|| {
        rayon::strided_lanes(16, 2, 2, |i| {
            let lane = i % 2;
            ids[lane].lock().unwrap().push(std::thread::current().id());
            let v: Vec<u32> = (0..256).collect();
            let s = v.par_iter().with_min_len(1).map(|&x| x).sum::<u32>();
            assert_eq!(s, 255 * 128);
            rayon::current_num_threads()
        })
    });
    assert!(widths.iter().all(|&w| w == 2), "inner width must be 2");
    let a: std::collections::HashSet<_> = ids[0].lock().unwrap().iter().copied().collect();
    let b: std::collections::HashSet<_> = ids[1].lock().unwrap().iter().copied().collect();
    assert!(
        a.is_disjoint(&b),
        "sibling lanes must not share worker threads"
    );
}

#[test]
fn strided_lanes_sequential_fallback_keeps_full_width() {
    // lanes <= 1 after clamping: items run as a plain loop in the calling
    // context, so inner parallel work still sees the whole pool.
    let p = pool(3);
    let widths = p.install(|| rayon::strided_lanes(4, 1, 0, |_| rayon::current_num_threads()));
    assert_eq!(widths, vec![3, 3, 3, 3]);
}

#[test]
fn strided_lanes_panic_propagates_and_pool_survives() {
    let p = pool(4);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        p.install(|| {
            rayon::strided_lanes(8, 2, 2, |i| {
                if i == 5 {
                    panic!("item 5 poisoned");
                }
                i
            })
        })
    }));
    assert!(caught.is_err(), "the item panic must reach the caller");
    // The pool (and the helper) stay fully operational afterwards.
    let out = p.install(|| rayon::strided_lanes(8, 2, 2, |i| i + 1));
    assert_eq!(out, (1..=8).collect::<Vec<_>>());
}

#[test]
fn strided_lanes_nest_inside_subsets() {
    // Calling the helper from inside a subset splits the *subset*: inner
    // lanes see widths of the subset partition, never the whole pool.
    let p = pool(4);
    let subsets = p.split(&[3, 1]);
    let widths =
        subsets[0].install(|| rayon::strided_lanes(6, 3, 1, |_| rayon::current_num_threads()));
    assert_eq!(widths, vec![1; 6]);
}

#[test]
fn invalid_splits_are_rejected() {
    let p = pool(2);
    for bad in [&[] as &[usize], &[0, 2], &[2, 1]] {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drop(p.split(bad))));
        assert!(caught.is_err(), "split({bad:?}) must be rejected");
    }
    // Sizes summing to less than the width are fine (leftover workers
    // simply take no subset work).
    let subsets = p.split(&[1]);
    assert_eq!(subsets.len(), 1);
    assert_eq!(subsets[0].install(rayon::current_num_threads), 1);
}
