//! # proptest (offline shim)
//!
//! A minimal, dependency-free stand-in for the `proptest` crate, vendored so
//! the qokit workspace builds without network access. It provides:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`] and
//!   [`Strategy::prop_flat_map`] combinators,
//! * strategies for numeric ranges, tuples, [`collection::vec()`] and
//!   [`bits::u64::between`],
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` support) plus
//!   [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike real proptest there is **no shrinking and no failure persistence**:
//! each test runs `cases` deterministic random inputs (seeded from the test
//! name, so failures reproduce run-to-run) and panics on the first violation.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!
//!     #[test]
//!     fn addition_commutes(a in -1.0f64..1.0, b in -1.0f64..1.0) {
//!         prop_assert!((a + b - (b + a)).abs() < 1e-12);
//!     }
//! }
//! ```
//!
//! (The `#[test]` functions the macro emits are picked up by the normal test
//! harness; this shim's own unit tests run the macro end-to-end.)

#![warn(missing_docs)]
// The crate-level doctest necessarily contains `#[test]`: that token is
// part of the `proptest!` macro's grammar being demonstrated.
#![allow(clippy::test_attr_in_doctest)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-test configuration. Only `cases` is honored by this shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test generator: seeded from the test name and case index
/// so each case is independent and every run is reproducible.
pub fn test_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37_79b9))
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.base.new_value(rng)).new_value(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// A constant strategy; also the building block for `Just`-style usage.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Element-count specification for [`vec()`]: an exact size, `lo..hi`, or
    /// `lo..=hi`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Bit-pattern strategies (`prop::bits`).
pub mod bits {
    /// Strategies over `u64` bit masks.
    pub mod u64 {
        use crate::{StdRng, Strategy};
        use rand::RngCore;

        /// Strategy for `u64` values whose set bits all lie in positions
        /// `[lo, hi)` (mirrors `proptest::bits::u64::between`).
        pub fn between(lo: usize, hi: usize) -> Between {
            assert!(lo <= hi && hi <= 64, "invalid bit range {lo}..{hi}");
            Between { lo, hi }
        }

        /// Strategy returned by [`between`].
        pub struct Between {
            lo: usize,
            hi: usize,
        }

        impl Strategy for Between {
            type Value = u64;
            fn new_value(&self, rng: &mut StdRng) -> u64 {
                let width = self.hi - self.lo;
                if width == 0 {
                    return 0;
                }
                let mask = if width == 64 {
                    u64::MAX
                } else {
                    (1u64 << width) - 1
                };
                (rng.next_u64() & mask) << self.lo
            }
        }
    }
}

/// Asserts a condition inside a [`proptest!`] body (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: munches one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_rng(stringify!($name), __case);
                $(let $pat = $crate::Strategy::new_value(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// The customary glob-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_respects_size((v, k) in (prop::collection::vec(0.0f64..1.0, 2..5), 1usize..4)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!((1..4).contains(&k));
            for x in v { prop_assert!((0.0..1.0).contains(&x)); }
        }

        #[test]
        fn bits_between_masks(m in prop::bits::u64::between(2, 6)) {
            prop_assert_eq!(m & !0b111100, 0);
        }

        #[test]
        fn flat_map_links_sizes(v in (1usize..=3).prop_flat_map(|n| prop::collection::vec(0u32..10, n))) {
            prop_assert!(!v.is_empty() && v.len() <= 3);
        }
    }

    #[test]
    fn runs_all_generated_tests() {
        vec_respects_size();
        bits_between_masks();
        flat_map_links_sizes();
    }
}
