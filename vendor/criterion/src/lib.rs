//! # criterion (offline shim)
//!
//! A minimal, dependency-free stand-in for the `criterion` benchmarking
//! crate, vendored so the qokit workspace builds without network access. It
//! supports the subset `qokit-bench/benches/kernels.rs` uses — benchmark
//! groups, [`BenchmarkId`], per-group tuning knobs, and the
//! [`criterion_group!`] / [`criterion_main!`] macros — and reports a simple
//! median wall-clock time per benchmark instead of criterion's full
//! statistical analysis.
//!
//! Passing `--test` (which `cargo test` does for benchmark targets) runs each
//! benchmark body exactly once, so the benches double as smoke tests.
//!
//! ```
//! use criterion::{Criterion, BenchmarkId};
//!
//! let mut c = Criterion::test_mode();
//! let mut g = c.benchmark_group("demo");
//! g.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
//!     b.iter(|| x * x);
//! });
//! g.finish();
//! ```

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement strategies (only wall-clock time is provided).
pub mod measurement {
    /// Wall-clock time measurement — the shim's only measurement.
    pub struct WallTime;
}

/// Identifies one benchmark within a group: a function name plus a parameter.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `pad` (rather than `write!`) honors width/alignment flags, so the
        // bench report columns line up.
        f.pad(&format!("{}/{}", self.function, self.parameter))
    }
}

/// Drives closures under measurement inside [`Bencher::iter`].
pub struct Bencher {
    iterations: u64,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Times `routine`, recording the median per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let mut samples = Vec::with_capacity(self.iterations as usize);
        for _ in 0..self.iterations {
            let start = Instant::now();
            std::hint::black_box(routine());
            samples.push(start.elapsed());
        }
        samples.sort_unstable();
        self.last_median = samples[samples.len() / 2];
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    iterations: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test` the harness passes `--test`: run once, as a
        // smoke test. Otherwise take a handful of samples per benchmark.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            iterations: if test_mode { 1 } else { 15 },
        }
    }
}

impl Criterion {
    /// A driver that runs every benchmark exactly once (smoke-test mode).
    pub fn test_mode() -> Self {
        Criterion { iterations: 1 }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        println!("\nbench group: {name}");
        BenchmarkGroup {
            criterion: self,
            _measurement: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing tuning settings.
pub struct BenchmarkGroup<'a, M> {
    criterion: &'a mut Criterion,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the sample count (accepted for API compatibility; the shim uses
    /// a fixed iteration count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up duration (ignored by the shim).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the measurement duration (ignored by the shim).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark identified by `id` over `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iterations: self.criterion.iterations,
            last_median: Duration::ZERO,
        };
        f(&mut b, input);
        println!("  {id:<40} {:>12.3?}", b.last_median);
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iterations: self.criterion.iterations,
            last_median: Duration::ZERO,
        };
        f(&mut b);
        println!("  {name:<40} {:>12.3?}", b.last_median);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Re-export of `std::hint::black_box` under criterion's customary name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into one runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::test_mode();
        let mut g = c.benchmark_group("t");
        let mut runs = 0u64;
        g.sample_size(10).warm_up_time(Duration::from_millis(1));
        g.bench_function("inc", |b| b.iter(|| runs += 1));
        g.bench_with_input(BenchmarkId::new("id", 3), &3u64, |b, &x| {
            b.iter(|| x + 1);
        });
        g.finish();
        assert_eq!(runs, 1);
    }
}
